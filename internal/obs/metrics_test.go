package obs

import (
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// TestNilRegistryZeroCost pins the disabled-by-default contract: a nil
// registry hands out nil instruments and every instrument method is a
// no-op on its nil (or zero) receiver.
func TestNilRegistryZeroCost(t *testing.T) {
	var r *Registry
	c := r.Counter("autonomizer_x_total", "h", nil)
	g := r.Gauge("autonomizer_x", "h", nil)
	h := r.Histogram("autonomizer_x_seconds", "h", nil, nil)
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry returned non-nil instruments: %v %v %v", c, g, h)
	}
	c.Inc()
	c.Add(7)
	g.Set(1)
	g.Add(-1)
	h.Observe(3)
	tm := h.Timer()
	tm.Stop()
	r.GaugeFunc("autonomizer_x_fn", "h", nil, func() float64 { return 1 })
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments reported non-zero values")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatalf("nil WritePrometheus: %v", err)
	}
	if r.Mismatches() != 0 {
		t.Fatal("nil registry reported mismatches")
	}
}

// TestInstrumentIdentity checks the registry caches instruments by
// (name, labels) with label order canonicalized.
func TestInstrumentIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("autonomizer_t_total", "h", Labels{"a": "1", "b": "2"})
	b := r.Counter("autonomizer_t_total", "h", Labels{"b": "2", "a": "1"})
	if a != b {
		t.Fatal("same (name, labels) resolved to distinct counters")
	}
	c := r.Counter("autonomizer_t_total", "h", Labels{"a": "1", "b": "3"})
	if a == c {
		t.Fatal("distinct label values resolved to the same counter")
	}
}

// TestKindMismatch checks that reusing a name with a different kind
// yields a no-op instrument and a mismatch count instead of a panic or a
// corrupt exposition.
func TestKindMismatch(t *testing.T) {
	r := NewRegistry()
	if c := r.Counter("autonomizer_dup", "h", nil); c == nil {
		t.Fatal("first registration failed")
	}
	if h := r.Histogram("autonomizer_dup", "h", nil, nil); h != nil {
		t.Fatal("kind conflict handed out a live histogram")
	}
	if g := r.Gauge("autonomizer_dup", "h", nil); g != nil {
		t.Fatal("kind conflict handed out a live gauge")
	}
	if n := r.Mismatches(); n != 2 {
		t.Fatalf("Mismatches = %d, want 2", n)
	}
}

// TestGaugeFuncReplace checks the last-writer-wins callback semantics
// runtimes rely on to export "the live store" across re-instrumentation.
func TestGaugeFuncReplace(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("autonomizer_live", "h", nil, func() float64 { return 1 })
	r.GaugeFunc("autonomizer_live", "h", nil, func() float64 { return 2 })
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "autonomizer_live 2\n") {
		t.Fatalf("replaced GaugeFunc not exported; got:\n%s", b.String())
	}
}

// TestHistogramBuckets checks bucket assignment against the fixed
// layout, including the implicit +Inf overflow bucket.
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("autonomizer_hb_seconds", "h", []float64{1, 10}, nil)
	for _, v := range []float64{0.5, 1, 2, 100} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("Count = %d, want 4", h.Count())
	}
	if h.Sum() != 103.5 {
		t.Fatalf("Sum = %v, want 103.5", h.Sum())
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{
		`autonomizer_hb_seconds_bucket{le="1"} 2`,  // 0.5 and the boundary value 1
		`autonomizer_hb_seconds_bucket{le="10"} 3`, // cumulative
		`autonomizer_hb_seconds_bucket{le="+Inf"} 4`,
		`autonomizer_hb_seconds_count 4`,
	} {
		if !strings.Contains(b.String(), line+"\n") {
			t.Fatalf("missing %q in:\n%s", line, b.String())
		}
	}
}

// TestWritePrometheusGolden locks the full exposition format — sorted
// families and series, HELP/TYPE lines, label escaping, cumulative
// histogram buckets — against a golden file.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("autonomizer_test_requests_total", "Requests by primitive.",
		Labels{"primitive": "nn"}).Add(3)
	r.Counter("autonomizer_test_requests_total", "Requests by primitive.",
		Labels{"primitive": "extract"}).Inc()
	r.Gauge("autonomizer_test_temp", "A settable gauge.", nil).Set(1.5)
	r.GaugeFunc("autonomizer_test_func", "A computed gauge.", nil,
		func() float64 { return 42 })
	h := r.Histogram("autonomizer_test_latency_seconds",
		"Latency with an escaped label.\nSecond help line.",
		[]float64{0.1, 1, 2.5}, Labels{"span": "a\\b\"c\nd"})
	for _, v := range []float64{0.25, 0.5, 2, 7} {
		h.Observe(v)
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	golden := filepath.Join("testdata", "exposition.golden")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("exposition differs from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}
}

// TestRegistryConcurrent hammers one registry from GOMAXPROCS
// goroutines — concurrent lookups, updates and renders — and checks the
// totals are exact. Run under -race this is the data-race proof for the
// lock-free instrument paths.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	workers := runtime.GOMAXPROCS(0)
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			lbl := Labels{"worker": strconv.Itoa(id % 4)}
			for i := 0; i < iters; i++ {
				r.Counter("autonomizer_cc_ops_total", "h", lbl).Inc()
				r.Gauge("autonomizer_cc_level", "h", nil).Add(1)
				r.Histogram("autonomizer_cc_seconds", "h", nil, nil).Observe(float64(i % 7))
				if i%256 == 0 {
					var b strings.Builder
					if err := r.WritePrometheus(&b); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	want := uint64(workers * iters)
	var total uint64
	for k := 0; k < 4; k++ {
		total += r.Counter("autonomizer_cc_ops_total", "h",
			Labels{"worker": strconv.Itoa(k)}).Value()
	}
	if total != want {
		t.Fatalf("counter total = %d, want %d", total, want)
	}
	if g := r.Gauge("autonomizer_cc_level", "h", nil).Value(); g != float64(want) {
		t.Fatalf("gauge = %v, want %d", g, want)
	}
	if n := r.Histogram("autonomizer_cc_seconds", "h", nil, nil).Count(); n != want {
		t.Fatalf("histogram count = %d, want %d", n, want)
	}
}

// TestDefaultRegistryLifecycle checks Default/Enable/SetDefault: nil
// until enabled, idempotent Enable, restorable for tests.
func TestDefaultRegistryLifecycle(t *testing.T) {
	prev := SetDefault(nil)
	defer SetDefault(prev)
	if Default() != nil {
		t.Fatal("Default non-nil after SetDefault(nil)")
	}
	a := Enable()
	if a == nil || Default() != a {
		t.Fatal("Enable did not install a registry")
	}
	if b := Enable(); b != a {
		t.Fatal("Enable is not idempotent")
	}
}
