package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Labels is one instrument's label set. Instruments are keyed by
// (name, labels); the same pair always resolves to the same instrument,
// so concurrent lookups from any number of goroutines are safe and
// cheap to cache. Keep label values to closed, low-cardinality
// vocabularies (DESIGN.md §5c).
type Labels map[string]string

// DefLatencyBuckets is the shared histogram layout for latency metrics,
// in seconds: 500 ns up to 10 s, roughly logarithmic. The primitives
// span five orders of magnitude (an au_extract is sub-microsecond, a
// CNN Fit epoch is seconds), so one fixed layout keeps every duration
// histogram comparable.
var DefLatencyBuckets = []float64{
	5e-7, 1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 10,
}

// DefSizeBuckets is the shared layout for byte-size histograms: 64 B up
// to 256 MB in powers of four.
var DefSizeBuckets = []float64{
	64, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10,
	256 << 10, 1 << 20, 4 << 20, 16 << 20, 64 << 20, 256 << 20,
}

// ExpBuckets builds n exponential histogram bounds: start, start*factor,
// start*factor², … — the layout for count-shaped distributions with a
// known geometric range (e.g. the serving layer's batch sizes, 1…2^k).
// n < 1 returns nil (the default layout); factor ≤ 1 is clamped to 2.
func ExpBuckets(start, factor float64, n int) []float64 {
	if n < 1 {
		return nil
	}
	if factor <= 1 {
		factor = 2
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Counter is a monotonically increasing uint64 metric. The zero method
// set on a nil *Counter is a no-op, which is the disabled fast path.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric that can go up and down. Nil-safe like
// Counter.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds d (negative to subtract) with a CAS loop.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution metric. Buckets are fixed at
// registration, observation is lock-free (one atomic add per
// observation plus a CAS for the sum), and the Prometheus cumulative
// form is computed at export time.
type Histogram struct {
	bounds  []float64 // upper bounds, ascending; +Inf implicit
	counts  []atomic.Uint64
	inf     atomic.Uint64
	sumBits atomic.Uint64
	total   atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket counts are small (≤ ~22) and the branch
	// predictor does well on latency-shaped data; binary search is not
	// worth the extra misprediction on short layouts.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	if i == len(h.bounds) {
		h.inf.Add(1)
	} else {
		h.counts[i].Add(1)
	}
	h.total.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Timer times one operation into a duration histogram. The nil-receiver
// path allocates nothing and never reads the clock, so a disabled
// runtime pays only the branch:
//
//	tm := hist.Timer() // zero Timer when hist is nil
//	defer tm.Stop()
type Timer struct {
	h     *Histogram
	start time.Time
}

// Timer starts timing; Stop records the elapsed seconds.
func (h *Histogram) Timer() Timer {
	if h == nil {
		return Timer{}
	}
	return Timer{h: h, start: time.Now()}
}

// Stop records the elapsed time. A zero Timer is a no-op.
func (t Timer) Stop() {
	if t.h == nil {
		return
	}
	t.h.Observe(time.Since(t.start).Seconds())
}

// StopAlso records the elapsed time into the timer's histogram and
// additionally into s (a sliding-window summary; nil is fine), reading
// the clock once. A zero Timer is a no-op.
func (t Timer) StopAlso(s *Summary) {
	if t.h == nil {
		return
	}
	d := time.Since(t.start).Seconds()
	t.h.Observe(d)
	s.Observe(d)
}

// metricKind tags a family's instrument type.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
	kindSummary
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	case kindSummary:
		return "summary"
	}
	return "untyped"
}

// series is one (name, labels) instrument inside a family.
type series struct {
	labels  string // canonical rendered label block, e.g. {a="b",c="d"}
	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
	sum     *Summary
}

// family groups all series sharing a metric name.
type family struct {
	name    string
	help    string
	kind    metricKind
	buckets []float64
	series  map[string]*series
	order   []string // registration-independent sorted keys, maintained on insert
}

// Registry holds metric families and renders them. All methods are safe
// for concurrent use and nil-safe: a nil *Registry returns nil
// instruments, which are themselves no-ops.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	mismatch atomic.Uint64 // registrations dropped due to name/kind conflicts
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// lookup finds or creates the family and series for (name, labels),
// returning nil when the name is already registered with a different
// kind (the conflicting site gets a no-op instrument rather than a
// panic or a corrupt exposition).
func (r *Registry) lookup(name, help string, kind metricKind, buckets []float64, labels Labels) *series {
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, buckets: buckets, series: make(map[string]*series)}
		r.families[name] = f
	}
	if f.kind != kind {
		r.mismatch.Add(1)
		return nil
	}
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: key}
		switch kind {
		case kindCounter:
			s.counter = &Counter{}
		case kindGauge, kindGaugeFunc:
			s.gauge = &Gauge{}
		case kindHistogram:
			h := &Histogram{bounds: append([]float64(nil), f.buckets...)}
			h.counts = make([]atomic.Uint64, len(h.bounds))
			s.hist = h
		case kindSummary:
			s.sum = NewSummary(0, 0)
		}
		f.series[key] = s
		i := sort.SearchStrings(f.order, key)
		f.order = append(f.order, "")
		copy(f.order[i+1:], f.order[i:])
		f.order[i] = key
	}
	return s
}

// Counter returns the counter for (name, labels), registering it on
// first use. Returns nil (a no-op counter) on a nil registry or a kind
// conflict.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	if r == nil {
		return nil
	}
	s := r.lookup(name, help, kindCounter, nil, labels)
	if s == nil {
		return nil
	}
	return s.counter
}

// Gauge returns the gauge for (name, labels), registering it on first
// use. Nil-safe like Counter.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	if r == nil {
		return nil
	}
	s := r.lookup(name, help, kindGauge, nil, labels)
	if s == nil {
		return nil
	}
	return s.gauge
}

// GaugeFunc registers a gauge whose value is computed by fn at export
// time (store sizes, queue depths). Re-registering the same
// (name, labels) replaces the callback — last writer wins — so a
// succession of runtimes can each export "the live store", with earlier
// closures (and whatever they capture) released for collection.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	if r == nil {
		return
	}
	s := r.lookup(name, help, kindGaugeFunc, nil, labels)
	if s == nil {
		return
	}
	r.mu.Lock()
	s.fn = fn
	r.mu.Unlock()
}

// Histogram returns the fixed-bucket histogram for (name, labels),
// registering it on first use with the given ascending bucket upper
// bounds (nil selects DefLatencyBuckets). Buckets are fixed by the
// first registration of the family. Nil-safe like Counter.
func (r *Registry) Histogram(name, help string, buckets []float64, labels Labels) *Histogram {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DefLatencyBuckets
	}
	s := r.lookup(name, help, kindHistogram, buckets, labels)
	if s == nil {
		return nil
	}
	return s.hist
}

// Summary returns the sliding-window quantile estimator for
// (name, labels), registering it on first use with the default window
// (1 minute, 6 slices) and the SummaryQuantiles objectives. Rendered
// as a Prometheus summary: one {quantile="..."} series per objective
// plus cumulative _sum and _count. Nil-safe like Counter.
func (r *Registry) Summary(name, help string, labels Labels) *Summary {
	if r == nil {
		return nil
	}
	s := r.lookup(name, help, kindSummary, nil, labels)
	if s == nil {
		return nil
	}
	return s.sum
}

// Mismatches reports how many instrument registrations were dropped
// because a metric name was reused with a different kind.
func (r *Registry) Mismatches() uint64 {
	if r == nil {
		return 0
	}
	return r.mismatch.Load()
}

// escapeLabelValue escapes a label value per the Prometheus text
// exposition format: backslash, double quote and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string (backslash and newline).
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// renderLabels produces the canonical sorted label block, "" for empty.
func renderLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(labels[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// withExtraLabel splices one more label pair into a rendered label
// block (used for histogram le labels).
func withExtraLabel(block, key, value string) string {
	pair := key + `="` + value + `"`
	if block == "" {
		return "{" + pair + "}"
	}
	return block[:len(block)-1] + "," + pair + "}"
}

// fmtFloat renders a sample value the way Prometheus clients do.
func fmtFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every family in the Prometheus text
// exposition format (version 0.0.4), families and series in sorted
// order so output is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)

	var b strings.Builder
	for _, name := range names {
		f := r.families[name]
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, key := range f.order {
			s := f.series[key]
			switch f.kind {
			case kindCounter:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, s.labels, s.counter.Value())
			case kindGauge:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, fmtFloat(s.gauge.Value()))
			case kindGaugeFunc:
				v := 0.0
				if s.fn != nil {
					v = s.fn()
				}
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, fmtFloat(v))
			case kindHistogram:
				h := s.hist
				cum := uint64(0)
				for i, bound := range h.bounds {
					cum += h.counts[i].Load()
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, withExtraLabel(s.labels, "le", fmtFloat(bound)), cum)
				}
				cum += h.inf.Load()
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, withExtraLabel(s.labels, "le", "+Inf"), cum)
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, s.labels, fmtFloat(h.Sum()))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, s.labels, cum)
			case kindSummary:
				for _, q := range SummaryQuantiles {
					fmt.Fprintf(&b, "%s%s %s\n", f.name,
						withExtraLabel(s.labels, "quantile", fmtFloat(q)), fmtFloat(s.sum.Quantile(q)))
				}
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, s.labels, fmtFloat(s.sum.Sum()))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, s.labels, s.sum.Count())
			}
		}
	}
	r.mu.Unlock()

	_, err := io.WriteString(w, b.String())
	return err
}

// snapshot renders the registry as a JSON-encodable map for expvar:
// counters and gauges map to numbers, histograms to
// {count, sum, buckets}.
func (r *Registry) snapshot() map[string]any {
	out := make(map[string]any)
	if r == nil {
		return out
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, f := range r.families {
		for _, key := range f.order {
			s := f.series[key]
			id := name + s.labels
			switch f.kind {
			case kindCounter:
				out[id] = s.counter.Value()
			case kindGauge:
				out[id] = s.gauge.Value()
			case kindGaugeFunc:
				if s.fn != nil {
					out[id] = s.fn()
				} else {
					out[id] = 0.0
				}
			case kindHistogram:
				out[id] = map[string]any{"count": s.hist.Count(), "sum": s.hist.Sum()}
			case kindSummary:
				out[id] = map[string]any{"count": s.sum.Count(), "sum": s.sum.Sum()}
			}
		}
	}
	return out
}

// expvarOnce guards the process-global expvar name, which panics on
// duplicate registration.
var expvarOnce sync.Once

// PublishExpvar exposes the registry on /debug/vars under the
// "autonomizer_metrics" key. The expvar callback reads the registry at
// request time, so it always reflects the current default registry;
// repeated calls are no-ops.
func (r *Registry) PublishExpvar() {
	if r == nil {
		return
	}
	expvarOnce.Do(func() {
		expvar.Publish("autonomizer_metrics", expvar.Func(func() any {
			return Default().snapshot()
		}))
	})
}
