package obs

import (
	"context"
	"fmt"
	"math/rand/v2"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Span tracing is the third leg of the telemetry layer: each primitive
// Ctx form opens a span, so a trace of one au_NN call shows its parent
// (the fit, the suite runner) and its duration without a profiler
// attached. Since PR 8 spans also carry W3C-style trace identity
// (TraceID / SpanID / ParentID), so a trace survives the client's
// socket: serve.Client injects a traceparent header, the server
// continues the same TraceID, and the batcher links the engine-predict
// span to every request span it served. Tracing is opt-in separately
// from metrics (SetTracing / the -trace flag) because span records cost
// a context allocation per call; when off, StartSpan returns the
// context untouched and a nil *Span whose End is a no-op.

// tracing gates span recording; off by default.
var tracing atomic.Bool

// SetTracing switches span recording on or off, returning the previous
// setting.
func SetTracing(on bool) bool { return tracing.Swap(on) }

// TracingEnabled reports whether spans are being recorded.
func TracingEnabled() bool { return tracing.Load() }

// NewTraceID returns a random non-zero 32-hex-digit W3C trace id.
func NewTraceID() string {
	var hi, lo uint64
	for hi == 0 && lo == 0 {
		hi, lo = rand.Uint64(), rand.Uint64()
	}
	return fmt.Sprintf("%016x%016x", hi, lo)
}

// NewSpanID returns a random non-zero 16-hex-digit W3C span id.
func NewSpanID() string {
	var v uint64
	for v == 0 {
		v = rand.Uint64()
	}
	return fmt.Sprintf("%016x", v)
}

// SpanLink points at another span (typically in another trace): the
// batch-coalescing link from one engine-predict span to the N request
// spans whose inputs it served.
type SpanLink struct {
	TraceID string `json:"trace_id"`
	SpanID  string `json:"span_id"`
}

// Span is one timed operation. A nil *Span (tracing disabled) is safe
// to End.
type Span struct {
	name     string
	parent   string // parent span name, "" for roots and remote parents
	traceID  string
	spanID   string
	parentID string
	links    []SpanLink
	start    time.Time
}

// TraceID returns the span's 32-hex trace id ("" on nil).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.traceID
}

// SpanID returns the span's 16-hex span id ("" on nil).
func (s *Span) SpanID() string {
	if s == nil {
		return ""
	}
	return s.spanID
}

// AddLink attaches a link to another span (see SpanLink). Nil-safe;
// links must be added by the span's owning goroutine before End.
func (s *Span) AddLink(traceID, spanID string) {
	if s == nil || traceID == "" || spanID == "" {
		return
	}
	s.links = append(s.links, SpanLink{TraceID: traceID, SpanID: spanID})
}

// spanContext carries the current span's identity through the context
// for parent attribution and wire propagation. name is "" for remote
// parents (continued from a traceparent header).
type spanContext struct {
	name    string
	traceID string
	spanID  string
}

// spanKey is the context key for the current *spanContext.
type spanKey struct{}

// SpanContextFrom extracts the current span identity from ctx: the
// trace and span ids a child (or an outbound request header) should
// reference. ok is false when ctx carries no span.
func SpanContextFrom(ctx context.Context) (traceID, spanID string, ok bool) {
	if ctx == nil {
		return "", "", false
	}
	sc, ok := ctx.Value(spanKey{}).(*spanContext)
	if !ok {
		return "", "", false
	}
	return sc.traceID, sc.spanID, true
}

// ContextWithRemoteParent installs a remote span identity (parsed from
// a traceparent header) as the current span context, so the next
// StartSpan continues the caller's trace. The remote parent has no
// local name; records parented on it carry only ParentID.
func ContextWithRemoteParent(ctx context.Context, traceID, spanID string) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, spanKey{}, &spanContext{traceID: traceID, spanID: spanID})
}

// StartSpan opens a span and returns a context carrying it for child
// attribution. The span inherits the context's trace id (starting a
// fresh trace at roots) and records the parent span's id. With tracing
// disabled it returns ctx unchanged and a nil span, allocating nothing.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if !tracing.Load() {
		return ctx, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	sp := &Span{name: name, spanID: NewSpanID(), start: time.Now()}
	if parent, ok := ctx.Value(spanKey{}).(*spanContext); ok {
		sp.parent = parent.name
		sp.traceID = parent.traceID
		sp.parentID = parent.spanID
	} else {
		sp.traceID = NewTraceID()
	}
	return context.WithValue(ctx, spanKey{}, &spanContext{name: name, traceID: sp.traceID, spanID: sp.spanID}), sp
}

// SpanRecord is one finished span in the in-memory ring.
type SpanRecord struct {
	Name     string        `json:"name"`
	Parent   string        `json:"parent,omitempty"`
	TraceID  string        `json:"trace_id,omitempty"`
	SpanID   string        `json:"span_id,omitempty"`
	ParentID string        `json:"parent_id,omitempty"`
	Links    []SpanLink    `json:"links,omitempty"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Err      string        `json:"err,omitempty"`
}

// Span-ring capacity bounds: the default matches the pre-configurable
// ring, the maximum keeps a runaway env value from pinning memory
// (1<<20 records ≈ 300 MB of spans is already absurd).
const (
	defaultSpanBuffer = 256
	maxSpanBuffer     = 1 << 20
)

// spanRing keeps the most recent spans for /debug/spans and tests.
// Capacity comes from AUTONOMIZER_SPAN_BUFFER (or SetSpanBuffer),
// resolved lazily on first use like the parallel pool's width.
var spanRing struct {
	once sync.Once
	mu   sync.Mutex
	buf  []SpanRecord
	next int
	n    int
}

// parseSpanBuffer validates an AUTONOMIZER_SPAN_BUFFER value: a
// positive decimal integer no larger than maxSpanBuffer.
func parseSpanBuffer(s string) (int, error) {
	n, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil {
		return 0, fmt.Errorf("obs: AUTONOMIZER_SPAN_BUFFER=%q is not an integer", s)
	}
	if n < 1 {
		return 0, fmt.Errorf("obs: AUTONOMIZER_SPAN_BUFFER=%d must be positive", n)
	}
	if n > maxSpanBuffer {
		return 0, fmt.Errorf("obs: AUTONOMIZER_SPAN_BUFFER=%d exceeds the cap of %d", n, maxSpanBuffer)
	}
	return n, nil
}

// ensureSpanRing resolves the initial ring capacity on first use:
// AUTONOMIZER_SPAN_BUFFER when valid, else the default — a malformed
// value is rejected loudly (logged warning) rather than silently
// resizing the ring, mirroring AUTONOMIZER_WORKERS.
func ensureSpanRing() {
	spanRing.once.Do(func() {
		size := defaultSpanBuffer
		if s := os.Getenv("AUTONOMIZER_SPAN_BUFFER"); s != "" {
			n, err := parseSpanBuffer(s)
			if err != nil {
				Logger().Warn("bad AUTONOMIZER_SPAN_BUFFER; falling back to default",
					"err", err, "default", defaultSpanBuffer)
			} else {
				size = n
			}
		}
		spanRing.buf = make([]SpanRecord, size)
	})
}

// SetSpanBuffer resizes the recent-span ring to hold n records,
// keeping the newest records that fit. It returns an error (and leaves
// the ring untouched) when n is out of bounds.
func SetSpanBuffer(n int) error {
	if n < 1 || n > maxSpanBuffer {
		return fmt.Errorf("obs: span buffer size %d out of range [1, %d]", n, maxSpanBuffer)
	}
	ensureSpanRing()
	spanRing.mu.Lock()
	defer spanRing.mu.Unlock()
	old := recentSpansLocked()
	if len(old) > n {
		old = old[len(old)-n:]
	}
	spanRing.buf = make([]SpanRecord, n)
	spanRing.n = copy(spanRing.buf, old)
	spanRing.next = spanRing.n % n
	return nil
}

// SpanBufferSize reports the ring's current capacity.
func SpanBufferSize() int {
	ensureSpanRing()
	spanRing.mu.Lock()
	defer spanRing.mu.Unlock()
	return len(spanRing.buf)
}

// End closes the span: its duration lands in the
// autonomizer_span_duration_seconds histogram (when metrics are
// enabled), the recent-span ring, and the debug log. err may be nil.
func (s *Span) End(err error) {
	if s == nil {
		return
	}
	d := time.Since(s.start)
	if r := Default(); r != nil {
		r.Histogram("autonomizer_span_duration_seconds",
			"Duration of traced runtime spans.", nil, Labels{"span": s.name}).Observe(d.Seconds())
	}
	rec := SpanRecord{
		Name: s.name, Parent: s.parent,
		TraceID: s.traceID, SpanID: s.spanID, ParentID: s.parentID,
		Links: s.links, Start: s.start, Duration: d,
	}
	if err != nil {
		rec.Err = err.Error()
	}
	ensureSpanRing()
	spanRing.mu.Lock()
	spanRing.buf[spanRing.next] = rec
	spanRing.next = (spanRing.next + 1) % len(spanRing.buf)
	if spanRing.n < len(spanRing.buf) {
		spanRing.n++
	}
	spanRing.mu.Unlock()
	Logger().Debug("span", "name", s.name, "parent", s.parent, "trace", s.traceID, "dur", d, "err", err)
}

// recentSpansLocked copies the ring oldest-first; callers hold the lock.
func recentSpansLocked() []SpanRecord {
	out := make([]SpanRecord, 0, spanRing.n)
	start := spanRing.next - spanRing.n
	for i := 0; i < spanRing.n; i++ {
		out = append(out, spanRing.buf[(start+i+len(spanRing.buf))%len(spanRing.buf)])
	}
	return out
}

// RecentSpans returns the most recent finished spans, oldest first.
func RecentSpans() []SpanRecord {
	ensureSpanRing()
	spanRing.mu.Lock()
	defer spanRing.mu.Unlock()
	return recentSpansLocked()
}
