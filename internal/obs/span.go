package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Span tracing is the third leg of the telemetry layer: each primitive
// Ctx form opens a span, so a trace of one au_NN call shows its parent
// (the fit, the suite runner) and its duration without a profiler
// attached. Tracing is opt-in separately from metrics (SetTracing /
// the -trace flag) because span records cost a context allocation per
// call; when off, StartSpan returns the context untouched and a nil
// *Span whose End is a no-op.

// tracing gates span recording; off by default.
var tracing atomic.Bool

// SetTracing switches span recording on or off, returning the previous
// setting.
func SetTracing(on bool) bool { return tracing.Swap(on) }

// TracingEnabled reports whether spans are being recorded.
func TracingEnabled() bool { return tracing.Load() }

// Span is one timed operation. A nil *Span (tracing disabled) is safe
// to End.
type Span struct {
	name   string
	parent string
	start  time.Time
}

// spanKey carries the current span name through the context for parent
// attribution.
type spanKey struct{}

// StartSpan opens a span and returns a context carrying it for child
// attribution. With tracing disabled it returns ctx unchanged and a nil
// span, allocating nothing.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if !tracing.Load() {
		return ctx, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	parent, _ := ctx.Value(spanKey{}).(string)
	sp := &Span{name: name, parent: parent, start: time.Now()}
	return context.WithValue(ctx, spanKey{}, name), sp
}

// SpanRecord is one finished span in the in-memory ring.
type SpanRecord struct {
	Name     string        `json:"name"`
	Parent   string        `json:"parent,omitempty"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Err      string        `json:"err,omitempty"`
}

// spanRing keeps the most recent spans for /debug/spans and tests.
const spanRingSize = 256

var spanRing struct {
	mu   sync.Mutex
	buf  [spanRingSize]SpanRecord
	next int
	n    int
}

// End closes the span: its duration lands in the
// autonomizer_span_duration_seconds histogram (when metrics are
// enabled), the recent-span ring, and the debug log. err may be nil.
func (s *Span) End(err error) {
	if s == nil {
		return
	}
	d := time.Since(s.start)
	if r := Default(); r != nil {
		r.Histogram("autonomizer_span_duration_seconds",
			"Duration of traced runtime spans.", nil, Labels{"span": s.name}).Observe(d.Seconds())
	}
	rec := SpanRecord{Name: s.name, Parent: s.parent, Start: s.start, Duration: d}
	if err != nil {
		rec.Err = err.Error()
	}
	spanRing.mu.Lock()
	spanRing.buf[spanRing.next] = rec
	spanRing.next = (spanRing.next + 1) % spanRingSize
	if spanRing.n < spanRingSize {
		spanRing.n++
	}
	spanRing.mu.Unlock()
	Logger().Debug("span", "name", s.name, "parent", s.parent, "dur", d, "err", err)
}

// RecentSpans returns the most recent finished spans, oldest first.
func RecentSpans() []SpanRecord {
	spanRing.mu.Lock()
	defer spanRing.mu.Unlock()
	out := make([]SpanRecord, 0, spanRing.n)
	start := spanRing.next - spanRing.n
	for i := 0; i < spanRing.n; i++ {
		out = append(out, spanRing.buf[(start+i+spanRingSize)%spanRingSize])
	}
	return out
}
