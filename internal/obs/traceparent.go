package obs

import (
	"context"
	"fmt"
	"net/http"
	"strings"
)

// W3C Trace Context propagation (the traceparent header,
// https://www.w3.org/TR/trace-context/). The serving layer injects the
// header on outbound requests (serve.Client) and continues the trace on
// inbound ones (auserve), so one client call and the server spans it
// fans into share a TraceID and chain through ParentID. Only the
// traceparent header is implemented — tracestate carries vendor baggage
// this runtime has no use for.

// TraceparentHeader is the canonical header name (HTTP header names are
// case-insensitive; the spec spells it lowercase).
const TraceparentHeader = "traceparent"

// FormatTraceparent renders the version-00 traceparent value for a span
// identity, with the sampled flag set (a recorded span is by definition
// sampled here — tracing is all-or-nothing).
func FormatTraceparent(traceID, spanID string) string {
	return "00-" + traceID + "-" + spanID + "-01"
}

// isLowerHex reports whether s is entirely lowercase hexadecimal, the
// only alphabet the traceparent grammar admits.
func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// isZero reports whether s is all '0' digits (the grammar forbids
// all-zero trace and span ids).
func isZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}

// ParseTraceparent validates a traceparent header value and returns the
// trace and parent span ids. Per the W3C grammar it rejects: wrong
// field count, non-hex or wrong-length fields, the invalid version ff,
// and all-zero trace or span ids. Version 00 must have exactly four
// fields; higher versions may append fields (forward compatibility).
func ParseTraceparent(h string) (traceID, spanID string, err error) {
	parts := strings.Split(h, "-")
	if len(parts) < 4 {
		return "", "", fmt.Errorf("obs: traceparent %q has %d fields, want 4", h, len(parts))
	}
	version := parts[0]
	if len(version) != 2 || !isLowerHex(version) {
		return "", "", fmt.Errorf("obs: traceparent version %q is not 2 lowercase hex digits", version)
	}
	if version == "ff" {
		return "", "", fmt.Errorf("obs: traceparent version ff is invalid")
	}
	if version == "00" && len(parts) != 4 {
		return "", "", fmt.Errorf("obs: version-00 traceparent %q has %d fields, want exactly 4", h, len(parts))
	}
	traceID, spanID, flags := parts[1], parts[2], parts[3]
	if len(traceID) != 32 || !isLowerHex(traceID) || isZero(traceID) {
		return "", "", fmt.Errorf("obs: traceparent trace-id %q is not 32 non-zero lowercase hex digits", traceID)
	}
	if len(spanID) != 16 || !isLowerHex(spanID) || isZero(spanID) {
		return "", "", fmt.Errorf("obs: traceparent parent-id %q is not 16 non-zero lowercase hex digits", spanID)
	}
	if len(flags) != 2 || !isLowerHex(flags) {
		return "", "", fmt.Errorf("obs: traceparent flags %q are not 2 lowercase hex digits", flags)
	}
	return traceID, spanID, nil
}

// InjectTraceparent sets the traceparent header for the current span
// context. A no-op when tracing is disabled or ctx carries no span, so
// instrumented clients pay one atomic load on the disabled path.
func InjectTraceparent(ctx context.Context, h http.Header) {
	if !tracing.Load() {
		return
	}
	if traceID, spanID, ok := SpanContextFrom(ctx); ok {
		h.Set(TraceparentHeader, FormatTraceparent(traceID, spanID))
	}
}

// ContinueFromHeader installs the remote parent named by a traceparent
// header value as ctx's span context, so the next StartSpan continues
// the caller's trace. An empty value returns ctx unchanged (a fresh
// root trace); a malformed value returns ctx unchanged and the parse
// error, which servers log-and-ignore rather than failing the request
// (observability must never break serving).
func ContinueFromHeader(ctx context.Context, header string) (context.Context, error) {
	if header == "" {
		return ctx, nil
	}
	traceID, spanID, err := ParseTraceparent(header)
	if err != nil {
		return ctx, err
	}
	return ContextWithRemoteParent(ctx, traceID, spanID), nil
}
