package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSummaryQuantileAccuracy feeds a known distribution and checks
// every rendered quantile lands within the estimator's documented ~9%
// relative error (one log bucket at 4 buckets/octave).
func TestSummaryQuantileAccuracy(t *testing.T) {
	s := NewSummary(time.Minute, 6)
	const n = 10000
	// Uniform 1ms..101ms: the true q-quantile is 1ms + q*100ms.
	now := time.Now().UnixNano()
	for i := 0; i < n; i++ {
		v := 0.001 + 0.1*float64(i)/float64(n)
		s.observeAt(v, now)
	}
	for _, q := range SummaryQuantiles {
		want := 0.001 + 0.1*q
		got := s.quantileAt(q, now)
		if rel := math.Abs(got-want) / want; rel > 0.10 {
			t.Errorf("q%.3f = %.6f, want %.6f within 10%% (off by %.1f%%)", q, got, want, 100*rel)
		}
	}
	if got := s.Count(); got != n {
		t.Errorf("Count = %d, want %d", got, n)
	}
	wantSum := 0.0
	for i := 0; i < n; i++ {
		wantSum += 0.001 + 0.1*float64(i)/float64(n)
	}
	if got := s.Sum(); math.Abs(got-wantSum) > 1e-6 {
		t.Errorf("Sum = %v, want %v", got, wantSum)
	}
}

// TestSummaryWindowSlides pins the sliding-window semantics with an
// injected clock: old observations rotate out slice by slice, a long
// idle gap empties the window entirely, and an empty window answers
// NaN.
func TestSummaryWindowSlides(t *testing.T) {
	window := time.Minute
	s := NewSummary(window, 6)
	t0 := s.start.Load()

	if !math.IsNaN(s.quantileAt(0.5, t0)) {
		t.Fatal("empty window must answer NaN")
	}

	// A slow cohort lands now; a fast cohort lands half a window later.
	for i := 0; i < 100; i++ {
		s.observeAt(0.5, t0) // 500ms
	}
	half := t0 + int64(window)/2
	for i := 0; i < 100; i++ {
		s.observeAt(0.001, half) // 1ms
	}
	// Mid-window the p99 still sees the slow cohort.
	if got := s.quantileAt(0.99, half); got < 0.3 {
		t.Errorf("p99 mid-window = %v, want the 500ms cohort still visible", got)
	}
	// One full window after the slow cohort, only the fast one remains.
	later := t0 + int64(window) + int64(window)/4
	if got := s.quantileAt(0.99, later); got > 0.01 {
		t.Errorf("p99 after slide = %v, want the 500ms cohort expired", got)
	}
	// An idle gap longer than the window empties everything.
	idle := later + 3*int64(window)
	if got := s.quantileAt(0.5, idle); !math.IsNaN(got) {
		t.Errorf("p50 after idle gap = %v, want NaN (empty window)", got)
	}
	// Cumulative count survives the slide (it is a counter, not a window).
	if got := s.Count(); got != 200 {
		t.Errorf("cumulative Count = %d, want 200", got)
	}
}

// TestSummaryBuckets pins the log-bucket layout: sub-floor and
// overflow values clamp to the edge buckets, and the representative
// value stays within one bucket of the input.
func TestSummaryBuckets(t *testing.T) {
	if got := qBucketIdx(0); got != 0 {
		t.Errorf("qBucketIdx(0) = %d, want the sub-floor bucket", got)
	}
	if got := qBucketIdx(math.NaN()); got != 0 {
		t.Errorf("qBucketIdx(NaN) = %d, want the sub-floor bucket", got)
	}
	if got := qBucketIdx(-1); got != 0 {
		t.Errorf("qBucketIdx(-1) = %d, want the sub-floor bucket", got)
	}
	if got := qBucketIdx(1e12); got != qBucketCount-1 {
		t.Errorf("qBucketIdx(1e12) = %d, want the top bucket %d", got, qBucketCount-1)
	}
	for _, v := range []float64{2e-6, 1e-3, 0.02, 0.5, 3, 60} {
		i := qBucketIdx(v)
		rep := qBucketValue(i)
		if rel := math.Abs(rep-v) / v; rel > 0.10 {
			t.Errorf("bucket %d representative %.6g for %.6g is off by %.1f%%", i, rep, v, 100*rel)
		}
	}
}

// TestSummaryNilSafe checks the nil-instrument contract.
func TestSummaryNilSafe(t *testing.T) {
	var s *Summary
	s.Observe(1)
	if got := s.Count(); got != 0 {
		t.Errorf("nil Count = %d", got)
	}
	if got := s.Sum(); got != 0 {
		t.Errorf("nil Sum = %v", got)
	}
	if got := s.Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("nil Quantile = %v, want NaN", got)
	}
}

// TestSummaryPrometheusRender checks the registry-side exposition: one
// {quantile="..."} series per objective plus _sum and _count, and NaN
// for an empty window.
func TestSummaryPrometheusRender(t *testing.T) {
	reg := NewRegistry()
	s := reg.Summary("autonomizer_test_latency_seconds", "h", Labels{"model": "m"})
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `autonomizer_test_latency_seconds{model="m",quantile="0.5"} NaN`) {
		t.Fatalf("empty summary must render NaN quantiles:\n%s", sb.String())
	}

	for i := 0; i < 100; i++ {
		s.Observe(0.010)
	}
	sb.Reset()
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "# TYPE autonomizer_test_latency_seconds summary") {
		t.Errorf("missing summary TYPE line:\n%s", out)
	}
	for _, q := range []string{"0.5", "0.95", "0.99", "0.999"} {
		if !strings.Contains(out, `{model="m",quantile="`+q+`"}`) {
			t.Errorf("missing quantile=%s series:\n%s", q, out)
		}
	}
	if !strings.Contains(out, `autonomizer_test_latency_seconds_count{model="m"} 100`) {
		t.Errorf("missing _count series:\n%s", out)
	}
	if !strings.Contains(out, `autonomizer_test_latency_seconds_sum{model="m"}`) {
		t.Errorf("missing _sum series:\n%s", out)
	}
	// Re-lookup returns the same instrument (registry identity).
	if again := reg.Summary("autonomizer_test_latency_seconds", "h", Labels{"model": "m"}); again != s {
		t.Error("re-registration returned a different Summary")
	}
}

// TestSummaryConcurrentObserve hammers lock-free observation against
// rotation and queries; run under -race in CI. The cumulative count
// must see every observation exactly once.
func TestSummaryConcurrentObserve(t *testing.T) {
	s := NewSummary(50*time.Millisecond, 5)
	const workers = 8
	const per = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.Observe(float64(i%100) * 1e-4)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			_ = s.Quantile(0.99)
		}
	}()
	wg.Wait()
	if got := s.Count(); got != workers*per {
		t.Errorf("Count = %d, want %d", got, workers*per)
	}
}
