package imaging

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// asciiRamp maps brightness to characters, dark to bright.
const asciiRamp = " .:-=+*#%@"

// ASCII renders the image as character art, averaging blockW×blockH
// pixel blocks onto the brightness ramp. It is the terminal "video"
// renderer used by cmd/replay.
func ASCII(img *Image, blockW, blockH int) string {
	if blockW < 1 {
		blockW = 1
	}
	if blockH < 1 {
		blockH = 1
	}
	var b strings.Builder
	for y := 0; y+blockH <= img.H; y += blockH {
		for x := 0; x+blockW <= img.W; x += blockW {
			sum := 0.0
			for dy := 0; dy < blockH; dy++ {
				for dx := 0; dx < blockW; dx++ {
					sum += img.At(x+dx, y+dy)
				}
			}
			v := sum / float64(blockW*blockH)
			idx := int(v / 256 * float64(len(asciiRamp)))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(asciiRamp) {
				idx = len(asciiRamp) - 1
			}
			b.WriteByte(asciiRamp[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// WritePGM writes the image as a binary PGM (P5) stream, clamping
// pixels to [0, 255].
func WritePGM(w io.Writer, img *Image) error {
	if _, err := fmt.Fprintf(w, "P5\n%d %d\n255\n", img.W, img.H); err != nil {
		return fmt.Errorf("imaging: write PGM header: %w", err)
	}
	buf := make([]byte, img.W*img.H)
	for i, v := range img.Pix {
		if v < 0 {
			v = 0
		}
		if v > 255 {
			v = 255
		}
		buf[i] = byte(v)
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("imaging: write PGM data: %w", err)
	}
	return nil
}

// ReadPGM parses a binary PGM (P5) stream produced by WritePGM. The
// header is tokenized manually: the P5 format allows a single
// whitespace byte between the max value and the pixel data, and pixel
// bytes may themselves look like whitespace, so buffered or scanning
// readers (fmt.Fscan) cannot be trusted not to eat data.
func ReadPGM(r io.Reader) (*Image, error) {
	token := func() (string, error) {
		var b []byte
		one := make([]byte, 1)
		// Skip leading whitespace.
		for {
			if _, err := io.ReadFull(r, one); err != nil {
				return "", err
			}
			if !isPGMSpace(one[0]) {
				b = append(b, one[0])
				break
			}
		}
		// Accumulate until the single delimiting whitespace byte, which
		// is consumed and discarded.
		for {
			if _, err := io.ReadFull(r, one); err != nil {
				if err == io.EOF && len(b) > 0 {
					return string(b), nil
				}
				return "", err
			}
			if isPGMSpace(one[0]) {
				return string(b), nil
			}
			b = append(b, one[0])
		}
	}
	magic, err := token()
	if err != nil {
		return nil, fmt.Errorf("imaging: read PGM magic: %w", err)
	}
	if magic != "P5" {
		return nil, fmt.Errorf("imaging: not a binary PGM (magic %q)", magic)
	}
	var dims [3]int
	for i := range dims {
		t, err := token()
		if err != nil {
			return nil, fmt.Errorf("imaging: read PGM header: %w", err)
		}
		v, err := strconv.Atoi(t)
		if err != nil {
			return nil, fmt.Errorf("imaging: bad PGM header field %q", t)
		}
		dims[i] = v
	}
	w, h, maxVal := dims[0], dims[1], dims[2]
	if w <= 0 || h <= 0 || w*h > 1<<26 {
		return nil, fmt.Errorf("imaging: implausible PGM size %dx%d", w, h)
	}
	if maxVal != 255 {
		return nil, fmt.Errorf("imaging: unsupported max value %d", maxVal)
	}
	buf := make([]byte, w*h)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("imaging: read PGM data: %w", err)
	}
	img := NewImage(w, h)
	for i, b := range buf {
		img.Pix[i] = float64(b)
	}
	return img, nil
}

func isPGMSpace(b byte) bool {
	return b == ' ' || b == '\t' || b == '\n' || b == '\r'
}
