package imaging

import (
	"math"

	"github.com/autonomizer/autonomizer/internal/stats"
)

// Scene is one synthetic test image with exact ground truth — the
// substitute for the paper's expert-annotated edge-detection datasets
// (Heath et al. / BSDS). The generator draws simple geometric content,
// then perturbs it with scene-specific contrast and noise. Because the
// ideal detector thresholds depend on that contrast and noise — and both
// are recoverable from the image (and especially its gradient
// histogram) — the generated corpus has exactly the property the
// paper's SL autonomization exploits: no single parameter configuration
// is optimal for every input, but a model can predict a good one from
// internal features.
type Scene struct {
	// Img is the rendered grayscale input image.
	Img *Image
	// Truth is the ground-truth edge map (255 on edges, 0 elsewhere).
	Truth *Image
	// Contrast is the foreground/background separation used (0-1).
	Contrast float64
	// Noise is the additive Gaussian noise sigma in pixel units.
	Noise float64
}

// SceneConfig bounds the generator's randomness.
type SceneConfig struct {
	// W, H are the image dimensions (default 64×64).
	W, H int
	// MinShapes/MaxShapes bound the number of shapes (default 2-5).
	MinShapes, MaxShapes int
	// MaxNoise bounds the additive noise sigma (default 24).
	MaxNoise float64
}

func (c *SceneConfig) fillDefaults() {
	if c.W == 0 {
		c.W = 64
	}
	if c.H == 0 {
		c.H = 64
	}
	if c.MinShapes == 0 {
		c.MinShapes = 2
	}
	if c.MaxShapes == 0 {
		c.MaxShapes = 5
	}
	if c.MaxNoise == 0 {
		c.MaxNoise = 24
	}
}

// GenerateScene renders one random scene from rng.
func GenerateScene(rng *stats.RNG, cfg SceneConfig) *Scene {
	cfg.fillDefaults()
	img := NewImage(cfg.W, cfg.H)
	truth := NewImage(cfg.W, cfg.H)

	background := rng.Range(30, 90)
	contrast := rng.Range(0.25, 1.0)
	fgDelta := contrast * 140
	for i := range img.Pix {
		img.Pix[i] = background
	}

	nShapes := cfg.MinShapes + rng.Intn(cfg.MaxShapes-cfg.MinShapes+1)
	for s := 0; s < nShapes; s++ {
		level := background + fgDelta*rng.Range(0.6, 1.0)
		switch rng.Intn(3) {
		case 0:
			drawRect(img, truth, rng, level)
		case 1:
			drawDisc(img, truth, rng, level)
		default:
			drawBar(img, truth, rng, level)
		}
	}

	noise := rng.Range(1, cfg.MaxNoise)
	for i := range img.Pix {
		img.Pix[i] += rng.NormFloat64() * noise
	}
	img.Clamp255()

	return &Scene{Img: img, Truth: truth, Contrast: contrast, Noise: noise}
}

func drawRect(img, truth *Image, rng *stats.RNG, level float64) {
	w, h := img.W, img.H
	x0 := rng.Intn(w - 8)
	y0 := rng.Intn(h - 8)
	rw := 6 + rng.Intn(w/2)
	rh := 6 + rng.Intn(h/2)
	x1, y1 := min(x0+rw, w-1), min(y0+rh, h-1)
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			img.Set(x, y, level)
		}
	}
	for x := x0; x <= x1; x++ {
		truth.Set(x, y0, 255)
		truth.Set(x, y1, 255)
	}
	for y := y0; y <= y1; y++ {
		truth.Set(x0, y, 255)
		truth.Set(x1, y, 255)
	}
}

func drawDisc(img, truth *Image, rng *stats.RNG, level float64) {
	w, h := img.W, img.H
	cx := float64(4 + rng.Intn(w-8))
	cy := float64(4 + rng.Intn(h-8))
	r := float64(4 + rng.Intn(min(w, h)/4))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			d := math.Hypot(float64(x)-cx, float64(y)-cy)
			if d <= r {
				img.Set(x, y, level)
			}
			if math.Abs(d-r) < 0.7 {
				truth.Set(x, y, 255)
			}
		}
	}
}

func drawBar(img, truth *Image, rng *stats.RNG, level float64) {
	w, h := img.W, img.H
	if rng.Bool(0.5) {
		// Vertical bar.
		x0 := rng.Intn(w - 4)
		bw := 3 + rng.Intn(6)
		x1 := min(x0+bw, w-1)
		for y := 0; y < h; y++ {
			for x := x0; x <= x1; x++ {
				img.Set(x, y, level)
			}
			truth.Set(x0, y, 255)
			truth.Set(x1, y, 255)
		}
	} else {
		y0 := rng.Intn(h - 4)
		bh := 3 + rng.Intn(6)
		y1 := min(y0+bh, h-1)
		for x := 0; x < w; x++ {
			for y := y0; y <= y1; y++ {
				img.Set(x, y, level)
			}
			truth.Set(x, y0, 255)
			truth.Set(x, y1, 255)
		}
	}
}

// GenerateCorpus produces n scenes from a seed, the workload generator
// for the Canny/Rothwell experiments (Fig. 12's "10 datasets" are 10
// held-out scenes).
func GenerateCorpus(seed uint64, n int, cfg SceneConfig) []*Scene {
	rng := stats.NewRNG(seed)
	out := make([]*Scene, n)
	for i := range out {
		out[i] = GenerateScene(rng.Split(), cfg)
	}
	return out
}
