package imaging

import "fmt"

// SSIM computes the mean structural-similarity index between two images
// of identical size (Wang, Bovik, Sheikh, Simoncelli 2004), the score
// the paper uses for Canny output quality. It slides an 8×8 window with
// stride 4 and averages the per-window SSIM with the standard constants
// C1=(0.01·255)², C2=(0.03·255)². The result is in [-1, 1]; 1 means
// identical images.
func SSIM(a, b *Image) float64 {
	if a.W != b.W || a.H != b.H {
		panic(fmt.Sprintf("imaging: SSIM size mismatch %dx%d vs %dx%d", a.W, a.H, b.W, b.H))
	}
	const (
		win    = 8
		stride = 4
		c1     = (0.01 * 255) * (0.01 * 255)
		c2     = (0.03 * 255) * (0.03 * 255)
	)
	total, count := 0.0, 0
	for y := 0; y+win <= a.H; y += stride {
		for x := 0; x+win <= a.W; x += stride {
			total += windowSSIM(a, b, x, y, win, c1, c2)
			count++
		}
	}
	if count == 0 {
		// Image smaller than a window: single whole-image window.
		return windowSSIM(a, b, 0, 0, min(a.W, a.H), c1, c2)
	}
	return total / float64(count)
}

func windowSSIM(a, b *Image, x0, y0, win int, c1, c2 float64) float64 {
	n := float64(win * win)
	var sumA, sumB float64
	for y := y0; y < y0+win; y++ {
		for x := x0; x < x0+win; x++ {
			sumA += a.At(x, y)
			sumB += b.At(x, y)
		}
	}
	muA, muB := sumA/n, sumB/n
	var varA, varB, cov float64
	for y := y0; y < y0+win; y++ {
		for x := x0; x < x0+win; x++ {
			da := a.At(x, y) - muA
			db := b.At(x, y) - muB
			varA += da * da
			varB += db * db
			cov += da * db
		}
	}
	varA /= n - 1
	varB /= n - 1
	cov /= n - 1
	return ((2*muA*muB + c1) * (2*cov + c2)) /
		((muA*muA + muB*muB + c1) * (varA + varB + c2))
}

// EdgeF1 scores a binary edge map against ground truth with the F1
// measure over a 1-pixel tolerance — a sharper complement to SSIM used
// by the harness to verify score orderings are not an SSIM artifact.
func EdgeF1(pred, truth *Image) float64 {
	if pred.W != truth.W || pred.H != truth.H {
		panic("imaging: EdgeF1 size mismatch")
	}
	near := func(im *Image, x, y int) bool {
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				if im.At(x+dx, y+dy) > 127 {
					return true
				}
			}
		}
		return false
	}
	var tp, fp, fn float64
	for y := 0; y < pred.H; y++ {
		for x := 0; x < pred.W; x++ {
			p := pred.At(x, y) > 127
			tr := truth.At(x, y) > 127
			switch {
			case p && near(truth, x, y):
				tp++
			case p && !near(truth, x, y):
				fp++
			case !p && tr && !near(pred, x, y):
				fn++
			}
		}
	}
	if tp == 0 {
		return 0
	}
	precision := tp / (tp + fp)
	recall := tp / (tp + fn)
	if precision+recall == 0 {
		return 0
	}
	return 2 * precision * recall / (precision + recall)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
