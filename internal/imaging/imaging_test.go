package imaging

import (
	"bytes"
	"math"
	"os"
	"testing"

	"github.com/autonomizer/autonomizer/internal/stats"
)

func TestImageBasics(t *testing.T) {
	im := NewImage(4, 3)
	im.Set(1, 2, 42)
	if im.At(1, 2) != 42 {
		t.Error("Set/At round trip failed")
	}
	// Border clamping.
	im.Set(0, 0, 7)
	if im.At(-5, -5) != 7 || im.At(100, 0) != im.At(3, 0) {
		t.Error("border clamp wrong")
	}
	// Out-of-bounds writes ignored.
	im.Set(-1, 0, 99)
	im.Set(0, 99, 99)
	c := im.Clone()
	c.Set(1, 1, 5)
	if im.At(1, 1) == 5 {
		t.Error("Clone shares pixels")
	}
}

func TestNewImagePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewImage(0,5) did not panic")
		}
	}()
	NewImage(0, 5)
}

func TestClamp255(t *testing.T) {
	im := NewImage(2, 1)
	im.Pix[0] = -10
	im.Pix[1] = 300
	im.Clamp255()
	if im.Pix[0] != 0 || im.Pix[1] != 255 {
		t.Errorf("Clamp255 = %v", im.Pix)
	}
}

func TestGaussianKernelNormalized(t *testing.T) {
	for _, sigma := range []float64{0.5, 1, 2.5} {
		k := GaussianKernel(sigma)
		if len(k)%2 != 1 {
			t.Errorf("kernel length %d not odd", len(k))
		}
		sum := 0.0
		for _, v := range k {
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("kernel sum = %v for sigma %v", sum, sigma)
		}
		// Symmetric and peaked at center.
		for i := 0; i < len(k)/2; i++ {
			if math.Abs(k[i]-k[len(k)-1-i]) > 1e-12 {
				t.Errorf("kernel asymmetric at %d", i)
			}
		}
		if k[len(k)/2] < k[0] {
			t.Error("kernel not peaked at center")
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("GaussianKernel(0) did not panic")
		}
	}()
	GaussianKernel(0)
}

func TestGaussianSmoothPreservesConstant(t *testing.T) {
	im := NewImage(16, 16)
	for i := range im.Pix {
		im.Pix[i] = 100
	}
	sm := GaussianSmooth(im, 1.5)
	for _, v := range sm.Pix {
		if math.Abs(v-100) > 1e-9 {
			t.Fatalf("smoothing changed constant image: %v", v)
		}
	}
}

func TestGaussianSmoothReducesNoise(t *testing.T) {
	rng := stats.NewRNG(1)
	im := NewImage(32, 32)
	for i := range im.Pix {
		im.Pix[i] = 100 + rng.NormFloat64()*30
	}
	sm := GaussianSmooth(im, 2)
	if stats.Variance(sm.Pix) >= stats.Variance(im.Pix)/2 {
		t.Errorf("smoothing did not reduce variance: %v -> %v",
			stats.Variance(im.Pix), stats.Variance(sm.Pix))
	}
}

func TestSobelDetectsStepEdge(t *testing.T) {
	im := NewImage(16, 16)
	for y := 0; y < 16; y++ {
		for x := 8; x < 16; x++ {
			im.Set(x, y, 200)
		}
	}
	mag, dir := Sobel(im)
	// Magnitude must peak at the x=7/8 boundary with a horizontal
	// gradient (direction 0).
	if mag.At(7, 8) < mag.At(2, 8)+100 {
		t.Errorf("edge magnitude %v not above interior %v", mag.At(7, 8), mag.At(2, 8))
	}
	if dir[8*16+7] != 0 {
		t.Errorf("edge direction = %d, want 0", dir[8*16+7])
	}
}

func TestHistogramTotalsPixels(t *testing.T) {
	im := NewImage(8, 8)
	h := im.Histogram(16)
	if stats.Sum(h) != 64 {
		t.Errorf("histogram mass %v, want 64", stats.Sum(h))
	}
}

func TestDownsample(t *testing.T) {
	im := NewImage(8, 8)
	for i := range im.Pix {
		im.Pix[i] = float64(i % 4)
	}
	d := Downsample(im, 2)
	if d.W != 4 || d.H != 4 {
		t.Fatalf("Downsample size %dx%d", d.W, d.H)
	}
	// Mean preserved under box averaging of an evenly divisible image.
	if math.Abs(d.Mean()-im.Mean()) > 1e-9 {
		t.Errorf("Downsample mean %v, want %v", d.Mean(), im.Mean())
	}
	defer func() {
		if recover() == nil {
			t.Error("oversized factor did not panic")
		}
	}()
	Downsample(im, 100)
}

func TestSSIMIdentity(t *testing.T) {
	rng := stats.NewRNG(2)
	im := NewImage(32, 32)
	for i := range im.Pix {
		im.Pix[i] = rng.Range(0, 255)
	}
	if got := SSIM(im, im); math.Abs(got-1) > 1e-9 {
		t.Errorf("SSIM(x,x) = %v, want 1", got)
	}
}

func TestSSIMOrdersDegradation(t *testing.T) {
	rng := stats.NewRNG(3)
	base := NewImage(32, 32)
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			if (x/8+y/8)%2 == 0 {
				base.Set(x, y, 200)
			} else {
				base.Set(x, y, 50)
			}
		}
	}
	light := base.Clone()
	heavy := base.Clone()
	for i := range light.Pix {
		light.Pix[i] += rng.NormFloat64() * 10
		heavy.Pix[i] += rng.NormFloat64() * 80
	}
	sLight, sHeavy := SSIM(base, light), SSIM(base, heavy)
	if !(1 > sLight && sLight > sHeavy) {
		t.Errorf("SSIM ordering violated: light=%v heavy=%v", sLight, sHeavy)
	}
}

func TestSSIMSymmetric(t *testing.T) {
	rng := stats.NewRNG(4)
	a, b := NewImage(24, 24), NewImage(24, 24)
	for i := range a.Pix {
		a.Pix[i] = rng.Range(0, 255)
		b.Pix[i] = rng.Range(0, 255)
	}
	if math.Abs(SSIM(a, b)-SSIM(b, a)) > 1e-12 {
		t.Error("SSIM not symmetric")
	}
}

func TestSSIMSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SSIM size mismatch did not panic")
		}
	}()
	SSIM(NewImage(4, 4), NewImage(5, 5))
}

func TestSSIMTinyImage(t *testing.T) {
	a, b := NewImage(4, 4), NewImage(4, 4)
	if got := SSIM(a, b); math.Abs(got-1) > 1e-9 {
		t.Errorf("tiny identical SSIM = %v", got)
	}
}

func TestEdgeF1(t *testing.T) {
	truth := NewImage(16, 16)
	for x := 0; x < 16; x++ {
		truth.Set(x, 8, 255)
	}
	perfect := truth.Clone()
	if got := EdgeF1(perfect, truth); got < 0.99 {
		t.Errorf("perfect F1 = %v", got)
	}
	// One pixel off is within tolerance.
	shifted := NewImage(16, 16)
	for x := 0; x < 16; x++ {
		shifted.Set(x, 9, 255)
	}
	if got := EdgeF1(shifted, truth); got < 0.99 {
		t.Errorf("1-px tolerance F1 = %v", got)
	}
	empty := NewImage(16, 16)
	if got := EdgeF1(empty, truth); got != 0 {
		t.Errorf("empty-prediction F1 = %v", got)
	}
	noisy := NewImage(16, 16)
	for y := 0; y < 16; y += 3 {
		for x := 0; x < 16; x++ {
			noisy.Set(x, y, 255)
		}
	}
	if f := EdgeF1(noisy, truth); f >= EdgeF1(perfect, truth) {
		t.Errorf("noisy F1 %v not below perfect", f)
	}
}

func TestGenerateSceneProperties(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		s := GenerateScene(stats.NewRNG(seed), SceneConfig{})
		if s.Img.W != 64 || s.Img.H != 64 || s.Truth.W != 64 {
			t.Fatal("scene dimensions wrong")
		}
		for _, v := range s.Img.Pix {
			if v < 0 || v > 255 {
				t.Fatalf("pixel out of range: %v", v)
			}
		}
		edges := 0
		for _, v := range s.Truth.Pix {
			if v == 255 {
				edges++
			} else if v != 0 {
				t.Fatalf("truth map not binary: %v", v)
			}
		}
		if edges < 10 {
			t.Errorf("seed %d: scene has only %d edge pixels", seed, edges)
		}
		if s.Noise <= 0 || s.Contrast <= 0 {
			t.Error("scene parameters not recorded")
		}
	}
}

func TestGenerateSceneDeterministic(t *testing.T) {
	a := GenerateScene(stats.NewRNG(7), SceneConfig{})
	b := GenerateScene(stats.NewRNG(7), SceneConfig{})
	for i := range a.Img.Pix {
		if a.Img.Pix[i] != b.Img.Pix[i] {
			t.Fatal("same seed produced different scenes")
		}
	}
}

func TestGenerateCorpus(t *testing.T) {
	c := GenerateCorpus(11, 5, SceneConfig{W: 32, H: 32})
	if len(c) != 5 {
		t.Fatalf("corpus size %d", len(c))
	}
	// Scenes must differ from each other.
	same := true
	for i := range c[0].Img.Pix {
		if c[0].Img.Pix[i] != c[1].Img.Pix[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("corpus scenes identical")
	}
}

func TestASCIIRender(t *testing.T) {
	img := NewImage(4, 4)
	for x := 2; x < 4; x++ {
		for y := 0; y < 4; y++ {
			img.Set(x, y, 255)
		}
	}
	got := ASCII(img, 2, 2)
	want := " @\n @\n"
	if got != want {
		t.Errorf("ASCII = %q, want %q", got, want)
	}
	// Degenerate block sizes clamp to 1.
	if ASCII(img, 0, 0) == "" {
		t.Error("block size 0 produced empty output")
	}
}

func TestPGMRoundTrip(t *testing.T) {
	rng := stats.NewRNG(9)
	img := NewImage(12, 7)
	for i := range img.Pix {
		img.Pix[i] = float64(int(rng.Range(0, 256)))
	}
	var buf bytes.Buffer
	if err := WritePGM(&buf, img); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.W != 12 || got.H != 7 {
		t.Fatalf("size %dx%d", got.W, got.H)
	}
	for i := range img.Pix {
		if got.Pix[i] != img.Pix[i] {
			t.Fatalf("pixel %d: %v != %v", i, got.Pix[i], img.Pix[i])
		}
	}
}

func TestWritePGMClamps(t *testing.T) {
	img := NewImage(2, 1)
	img.Pix[0] = -50
	img.Pix[1] = 900
	var buf bytes.Buffer
	if err := WritePGM(&buf, img); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Pix[0] != 0 || got.Pix[1] != 255 {
		t.Errorf("clamped pixels = %v", got.Pix)
	}
}

func TestReadPGMRejectsGarbage(t *testing.T) {
	for _, bad := range []string{"", "P6\n2 2\n255\n", "P5\n-1 2\n255\n", "P5\n2 2\n128\n"} {
		if _, err := ReadPGM(bytes.NewBufferString(bad)); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
	// Truncated data.
	var buf bytes.Buffer
	buf.WriteString("P5\n4 4\n255\n\x00\x01")
	if _, err := ReadPGM(&buf); err == nil {
		t.Error("accepted truncated data")
	}
}

func TestPGMFileRoundTrip(t *testing.T) {
	img := NewImage(8, 8)
	img.Set(3, 3, 255)
	path := t.TempDir() + "/t.pgm"
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WritePGM(f, img); err != nil {
		t.Fatal(err)
	}
	f.Close()
	g, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	got, err := ReadPGM(g)
	if err != nil {
		t.Fatalf("ReadPGM from file: %v", err)
	}
	if got.At(3, 3) != 255 {
		t.Error("file round trip lost data")
	}
}
