// Package imaging provides the image substrate for the supervised-
// learning subjects: grayscale images, the synthetic scene generator
// that replaces the paper's edge-detection datasets (which shipped with
// expert-drawn ground truth we do not have), histograms, and the SSIM
// quality score (Wang et al. 2004) that the paper uses to grade Canny
// output against ground truth.
package imaging

import (
	"fmt"
	"math"

	"github.com/autonomizer/autonomizer/internal/stats"
)

// Image is a grayscale image with float64 pixels, row-major. Pixel
// values are nominally in [0, 255] but operations tolerate any range.
type Image struct {
	W, H int
	Pix  []float64
}

// NewImage allocates a zero (black) image.
func NewImage(w, h int) *Image {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("imaging: invalid dimensions %dx%d", w, h))
	}
	return &Image{W: w, H: h, Pix: make([]float64, w*h)}
}

// At returns the pixel at (x, y); coordinates clamp to the border,
// which gives convolution kernels replicate-padding semantics.
func (im *Image) At(x, y int) float64 {
	if x < 0 {
		x = 0
	}
	if x >= im.W {
		x = im.W - 1
	}
	if y < 0 {
		y = 0
	}
	if y >= im.H {
		y = im.H - 1
	}
	return im.Pix[y*im.W+x]
}

// Set stores v at (x, y); out-of-bounds writes are ignored.
func (im *Image) Set(x, y int, v float64) {
	if x < 0 || x >= im.W || y < 0 || y >= im.H {
		return
	}
	im.Pix[y*im.W+x] = v
}

// Clone returns a deep copy.
func (im *Image) Clone() *Image {
	c := NewImage(im.W, im.H)
	copy(c.Pix, im.Pix)
	return c
}

// Clamp255 limits every pixel to [0, 255] in place and returns im.
func (im *Image) Clamp255() *Image {
	for i, v := range im.Pix {
		im.Pix[i] = stats.Clamp(v, 0, 255)
	}
	return im
}

// Mean returns the average pixel value.
func (im *Image) Mean() float64 { return stats.Mean(im.Pix) }

// Histogram bins pixel values into n buckets over [0, 255]. The Canny
// subject extracts its gradient-magnitude histogram this way; in the
// paper it is the flagship minimum-distance feature variable.
func (im *Image) Histogram(n int) []float64 {
	return stats.Histogram(im.Pix, n, 0, 256)
}

// GaussianKernel returns a normalized 1-D Gaussian kernel for the given
// sigma; the radius is ceil(3*sigma) as in canonical Canny
// implementations. Sigma must be positive.
func GaussianKernel(sigma float64) []float64 {
	if sigma <= 0 {
		panic(fmt.Sprintf("imaging: sigma must be positive, got %v", sigma))
	}
	radius := int(math.Ceil(3 * sigma))
	k := make([]float64, 2*radius+1)
	sum := 0.0
	for i := range k {
		d := float64(i - radius)
		k[i] = math.Exp(-d * d / (2 * sigma * sigma))
		sum += k[i]
	}
	for i := range k {
		k[i] /= sum
	}
	return k
}

// GaussianSmooth applies separable Gaussian smoothing, returning a new
// image. This is Canny's first stage (the "sImg" variable of Fig. 9).
func GaussianSmooth(im *Image, sigma float64) *Image {
	k := GaussianKernel(sigma)
	radius := len(k) / 2
	tmp := NewImage(im.W, im.H)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			sum := 0.0
			for i, kv := range k {
				sum += kv * im.At(x+i-radius, y)
			}
			tmp.Pix[y*im.W+x] = sum
		}
	}
	out := NewImage(im.W, im.H)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			sum := 0.0
			for i, kv := range k {
				sum += kv * tmp.At(x, y+i-radius)
			}
			out.Pix[y*im.W+x] = sum
		}
	}
	return out
}

// Sobel computes gradient magnitude and quantized direction (0-3 for
// 0°, 45°, 90°, 135°) with the Sobel operator — Canny's "mag" stage.
func Sobel(im *Image) (mag *Image, dir []int) {
	mag = NewImage(im.W, im.H)
	dir = make([]int, im.W*im.H)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			gx := -im.At(x-1, y-1) - 2*im.At(x-1, y) - im.At(x-1, y+1) +
				im.At(x+1, y-1) + 2*im.At(x+1, y) + im.At(x+1, y+1)
			gy := -im.At(x-1, y-1) - 2*im.At(x, y-1) - im.At(x+1, y-1) +
				im.At(x-1, y+1) + 2*im.At(x, y+1) + im.At(x+1, y+1)
			m := math.Hypot(gx, gy)
			mag.Pix[y*im.W+x] = m
			angle := math.Atan2(gy, gx) * 180 / math.Pi
			if angle < 0 {
				angle += 180
			}
			switch {
			case angle < 22.5 || angle >= 157.5:
				dir[y*im.W+x] = 0 // horizontal gradient → vertical edge
			case angle < 67.5:
				dir[y*im.W+x] = 1
			case angle < 112.5:
				dir[y*im.W+x] = 2
			default:
				dir[y*im.W+x] = 3
			}
		}
	}
	return mag, dir
}

// Downsample reduces the image by integer factor using box averaging —
// the preprocessing step Raw models apply before feeding screens to the
// CNN (the paper's 84x84 DeepMind-style inputs).
func Downsample(im *Image, factor int) *Image {
	if factor <= 0 {
		panic("imaging: downsample factor must be positive")
	}
	w, h := im.W/factor, im.H/factor
	if w == 0 || h == 0 {
		panic(fmt.Sprintf("imaging: factor %d too large for %dx%d", factor, im.W, im.H))
	}
	out := NewImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			sum := 0.0
			for dy := 0; dy < factor; dy++ {
				for dx := 0; dx < factor; dx++ {
					sum += im.At(x*factor+dx, y*factor+dy)
				}
			}
			out.Pix[y*w+x] = sum / float64(factor*factor)
		}
	}
	return out
}
