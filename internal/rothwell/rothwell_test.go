package rothwell

import (
	"testing"

	"github.com/autonomizer/autonomizer/internal/dep"
	"github.com/autonomizer/autonomizer/internal/extract"
	"github.com/autonomizer/autonomizer/internal/imaging"
	"github.com/autonomizer/autonomizer/internal/stats"
)

func TestValidateAndClamp(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Errorf("default invalid: %v", err)
	}
	bad := []Params{
		{Sigma: 0, Alpha: 0.5, MinLen: 3},
		{Sigma: 1, Alpha: 0, MinLen: 3},
		{Sigma: 1, Alpha: 1, MinLen: 3},
		{Sigma: 1, Alpha: 0.5, MinLen: -1},
		{Sigma: 1, Alpha: 0.5, MinLen: 100},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("%+v validated", p)
		}
		if err := p.Clamp().Validate(); err != nil {
			t.Errorf("clamp of %+v still invalid: %v", p, err)
		}
	}
}

func TestDetectRejectsBadParams(t *testing.T) {
	if _, err := Detect(imaging.NewImage(8, 8), Params{}, nil, nil); err == nil {
		t.Error("Detect with zero params succeeded")
	}
}

func TestDetectFindsEdges(t *testing.T) {
	img := imaging.NewImage(32, 32)
	for y := 0; y < 32; y++ {
		for x := 16; x < 32; x++ {
			img.Set(x, y, 200)
		}
	}
	result, err := Detect(img, DefaultParams(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	edgePixels := 0
	for _, v := range result.Pix {
		if v > 0 {
			edgePixels++
		}
	}
	if edgePixels < 15 {
		t.Errorf("step edge produced only %d edge pixels", edgePixels)
	}
}

func TestBlankImageNoEdges(t *testing.T) {
	result, err := Detect(imaging.NewImage(16, 16), DefaultParams(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range result.Pix {
		if v != 0 {
			t.Fatal("blank image produced edges")
		}
	}
}

func TestMinLenFiltersShortSegments(t *testing.T) {
	// A single isolated bright dot yields a tiny segment that MinLen
	// should remove.
	img := imaging.NewImage(24, 24)
	img.Set(12, 12, 255)
	few, err := Detect(img, Params{Sigma: 0.5, Alpha: 0.3, MinLen: 0}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	many, err := Detect(img, Params{Sigma: 0.5, Alpha: 0.3, MinLen: 40}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	count := func(im *imaging.Image) int {
		n := 0
		for _, v := range im.Pix {
			if v > 0 {
				n++
			}
		}
		return n
	}
	if count(many) >= count(few) && count(few) > 0 {
		t.Errorf("MinLen=40 (%d px) did not filter below MinLen=0 (%d px)", count(many), count(few))
	}
}

func TestTraceCaptured(t *testing.T) {
	sc := imaging.GenerateScene(stats.NewRNG(1), imaging.SceneConfig{W: 32, H: 32})
	var tr Trace
	if _, err := Detect(sc.Img, DefaultParams(), nil, &tr); err != nil {
		t.Fatal(err)
	}
	if len(tr.Image) != 32*32 {
		t.Error("raw image not traced")
	}
	if len(tr.GradStats) != 6 {
		t.Errorf("GradStats = %v", tr.GradStats)
	}
	if tr.Threshold <= 0 {
		t.Error("threshold not captured")
	}
	if tr.Segments == 0 {
		t.Error("segment count not captured")
	}
}

func TestAlgorithm1OnRothwellGraph(t *testing.T) {
	g := dep.NewGraph()
	sc := imaging.GenerateScene(stats.NewRNG(2), imaging.SceneConfig{W: 32, H: 32})
	if _, err := Detect(sc.Img, DefaultParams(), g, nil); err != nil {
		t.Fatal(err)
	}
	res := extract.SL(g, Inputs(), Targets())
	feats := res["alpha"]
	if len(feats) == 0 {
		t.Fatal("no features for alpha")
	}
	// gradStats is the near feature for the threshold percentile.
	if feats[0].Name != "gradStats" {
		t.Errorf("min feature for alpha = %s, want gradStats", feats[0].Name)
	}
	// Candidate count should be small, near Table 1's 8.
	n := extract.CandidateCount(g, Inputs())
	if n < 5 || n > 14 {
		t.Errorf("candidate count = %d, want ~8", n)
	}
}

func TestOracleBeatsDefaults(t *testing.T) {
	scenes := imaging.GenerateCorpus(9, 4, imaging.SceneConfig{W: 32, H: 32})
	wins := 0
	for _, sc := range scenes {
		_, oracleScore := Oracle(sc)
		d, err := Detect(sc.Img, DefaultParams(), nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if oracleScore >= Score(d, sc.Truth) {
			wins++
		}
	}
	if wins < 3 {
		t.Errorf("oracle beat defaults on only %d/4 scenes", wins)
	}
}
