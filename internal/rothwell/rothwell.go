// Package rothwell implements a topology-driven edge detector in the
// style of Rothwell, Mundy, Hoffman & Nguyen (ISCV 1995) — the paper's
// second supervised-learning subject. Where Canny links edges by double
// hysteresis, the Rothwell detector applies dynamic thresholding on the
// gradient image followed by topology-preserving thinning and a
// short-segment filter.
//
// Target variables (Table 1 lists 3): the dynamic threshold percentile
// (alpha), the smoothing width (sigma), and the minimum surviving
// segment length (minLen). The candidate feature set is small (Table 1:
// 8), matching the paper's statistics for this subject.
package rothwell

import (
	"fmt"
	"sort"

	"github.com/autonomizer/autonomizer/internal/dep"
	"github.com/autonomizer/autonomizer/internal/imaging"
	"github.com/autonomizer/autonomizer/internal/stats"
)

// Params are the detector's target variables.
type Params struct {
	// Sigma is the Gaussian smoothing width.
	Sigma float64
	// Alpha is the dynamic threshold percentile over nonzero gradient
	// magnitudes, in (0, 1).
	Alpha float64
	// MinLen removes connected edge segments shorter than this.
	MinLen int
}

// DefaultParams is the fixed baseline configuration.
func DefaultParams() Params { return Params{Sigma: 1.0, Alpha: 0.7, MinLen: 5} }

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.Sigma <= 0 || p.Sigma > 8 {
		return fmt.Errorf("rothwell: sigma %v out of (0, 8]", p.Sigma)
	}
	if p.Alpha <= 0 || p.Alpha >= 1 {
		return fmt.Errorf("rothwell: alpha %v out of (0, 1)", p.Alpha)
	}
	if p.MinLen < 0 || p.MinLen > 64 {
		return fmt.Errorf("rothwell: minLen %d out of [0, 64]", p.MinLen)
	}
	return nil
}

// Clamp coerces parameters into their valid ranges.
func (p Params) Clamp() Params {
	p.Sigma = stats.Clamp(p.Sigma, 0.3, 8)
	p.Alpha = stats.Clamp(p.Alpha, 0.05, 0.95)
	if p.MinLen < 0 {
		p.MinLen = 0
	}
	if p.MinLen > 64 {
		p.MinLen = 64
	}
	return p
}

// Trace captures the intermediate variables of one run.
type Trace struct {
	// Image is the raw input (Raw feature).
	Image []float64
	// GradStats is the compact gradient summary (the Min feature):
	// {mean, variance, p50, p90, max} of nonzero magnitudes plus the
	// nonzero-pixel ratio.
	GradStats []float64
	// Threshold is the dynamic threshold actually applied.
	Threshold float64
	// Segments counts connected segments before length filtering.
	Segments int
}

// Detect runs the pipeline, optionally recording dependence events into
// g and intermediates into tr.
func Detect(img *imaging.Image, p Params, g *dep.Graph, tr *Trace) (*imaging.Image, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if g != nil {
		recordDeps(g)
	}
	if tr != nil {
		tr.Image = append([]float64(nil), img.Pix...)
	}

	sImg := imaging.GaussianSmooth(img, p.Sigma)
	mag, _ := imaging.Sobel(sImg)

	// Dynamic threshold: the alpha-percentile of nonzero magnitudes.
	nonzero := make([]float64, 0, len(mag.Pix))
	for _, v := range mag.Pix {
		if v > 1e-9 {
			nonzero = append(nonzero, v)
		}
	}
	var threshold float64
	if len(nonzero) > 0 {
		sorted := append([]float64(nil), nonzero...)
		sort.Float64s(sorted)
		idx := int(p.Alpha * float64(len(sorted)-1))
		threshold = sorted[idx]
	}
	if tr != nil {
		tr.Threshold = threshold
		tr.GradStats = gradStats(nonzero, len(mag.Pix))
	}

	binary := imaging.NewImage(img.W, img.H)
	for i, v := range mag.Pix {
		if v > threshold && threshold > 0 {
			binary.Pix[i] = 255
		}
	}

	thinned := thin(binary)
	result, segments := filterSegments(thinned, p.MinLen)
	if tr != nil {
		tr.Segments = segments
	}
	return result, nil
}

// gradStats compresses the gradient distribution into the detector's
// internal summary variables.
func gradStats(nonzero []float64, total int) []float64 {
	if len(nonzero) == 0 {
		return make([]float64, 6)
	}
	sorted := append([]float64(nil), nonzero...)
	sort.Float64s(sorted)
	max := sorted[len(sorted)-1]
	return []float64{
		stats.Mean(nonzero),
		stats.Variance(nonzero),
		sorted[len(sorted)/2],
		sorted[int(0.9*float64(len(sorted)-1))],
		max,
		float64(len(nonzero)) / float64(total),
	}
}

// thin performs one-pass morphological thinning: interior pixels (all
// 4-neighbours set) are removed, preserving topology for thin strokes.
func thin(b *imaging.Image) *imaging.Image {
	out := b.Clone()
	for y := 0; y < b.H; y++ {
		for x := 0; x < b.W; x++ {
			if b.At(x, y) == 0 {
				continue
			}
			if b.At(x-1, y) > 0 && b.At(x+1, y) > 0 && b.At(x, y-1) > 0 && b.At(x, y+1) > 0 {
				out.Set(x, y, 0)
			}
		}
	}
	return out
}

// filterSegments removes 8-connected components smaller than minLen,
// returning the filtered map and the pre-filter segment count.
func filterSegments(b *imaging.Image, minLen int) (*imaging.Image, int) {
	w, h := b.W, b.H
	labels := make([]int, w*h)
	next := 0
	var sizes []int
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if b.At(x, y) == 0 || labels[y*w+x] != 0 {
				continue
			}
			next++
			size := 0
			stack := [][2]int{{x, y}}
			labels[y*w+x] = next
			for len(stack) > 0 {
				p := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				size++
				for dy := -1; dy <= 1; dy++ {
					for dx := -1; dx <= 1; dx++ {
						nx, ny := p[0]+dx, p[1]+dy
						if nx < 0 || nx >= w || ny < 0 || ny >= h {
							continue
						}
						if b.At(nx, ny) > 0 && labels[ny*w+nx] == 0 {
							labels[ny*w+nx] = next
							stack = append(stack, [2]int{nx, ny})
						}
					}
				}
			}
			sizes = append(sizes, size)
		}
	}
	out := imaging.NewImage(w, h)
	for i, l := range labels {
		if l > 0 && sizes[l-1] >= minLen {
			out.Pix[i] = 255
		}
	}
	return out, next
}

// recordDeps emits the dependence structure of one run. The candidate
// set is deliberately small (Table 1: 8 candidates for Rothwell).
func recordDeps(g *dep.Graph) {
	g.MarkInput("image")
	g.Def("sImg", "image", "sigma")
	g.Def("mag", "sImg")
	g.Def("gradStats", "mag")
	g.Def("threshold", "gradStats", "alpha")
	g.Def("binary", "mag", "threshold")
	g.Def("thinned", "binary")
	g.Def("segments", "thinned")
	g.Def("result", "segments", "minLen")
	for _, v := range []string{"image", "sigma", "sImg"} {
		g.Use("smooth", v)
	}
	for _, v := range []string{"mag", "gradStats", "alpha", "threshold"} {
		g.Use("dynthresh", v)
	}
	for _, v := range []string{"binary", "thinned", "segments", "minLen", "result"} {
		g.Use("topology", v)
	}
}

// Inputs returns the program-input set for Algorithm 1.
func Inputs() []string { return []string{"image"} }

// Targets returns the target variables (Table 1: 3).
func Targets() []string { return []string{"sigma", "alpha", "minLen"} }

// Score grades a detection with SSIM against ground truth.
func Score(result, truth *imaging.Image) float64 {
	return imaging.SSIM(result, truth)
}

// Oracle grid-searches for per-scene ideal parameters (training
// labels).
func Oracle(sc *imaging.Scene) (Params, float64) {
	best := DefaultParams()
	bestScore := -2.0
	for _, sigma := range []float64{0.6, 1.0, 1.8, 2.6} {
		for _, alpha := range []float64{0.5, 0.65, 0.8, 0.9} {
			for _, minLen := range []int{2, 6, 12} {
				p := Params{Sigma: sigma, Alpha: alpha, MinLen: minLen}
				result, err := Detect(sc.Img, p, nil, nil)
				if err != nil {
					continue
				}
				if s := Score(result, sc.Truth); s > bestScore {
					bestScore = s
					best = p
				}
			}
		}
	}
	return best, bestScore
}
