package torcs

import (
	"math"
	"testing"

	"github.com/autonomizer/autonomizer/internal/extract"
	"github.com/autonomizer/autonomizer/internal/games/env"
	"github.com/autonomizer/autonomizer/internal/trace"
)

func TestInterfaceCompliance(t *testing.T) {
	var _ env.Env = New(1)
}

func TestScriptedDriverFinishes(t *testing.T) {
	g := New(2)
	_, success := env.AverageScore(g, ScriptedPlayer, 3, 2000)
	if success < 1 {
		t.Errorf("scripted driver success rate %v, want 1.0 (the paper's players finish)", success)
	}
}

func TestNoSteeringBumps(t *testing.T) {
	g := New(3)
	res := env.RunEpisode(g, func(env.Env) int { return ActStraight }, 2000)
	if res.Success {
		t.Error("steering-free drive finished the curved track")
	}
}

func TestSteeringChangesHeading(t *testing.T) {
	g := New(4)
	g.Step(ActLeft)
	if g.StateVars()["angle"] >= 0 {
		t.Error("left steer did not turn left")
	}
	g.Reset()
	g.Step(ActRight)
	if g.StateVars()["angle"] <= 0 {
		t.Error("right steer did not turn right")
	}
}

func TestWallBumpTerminal(t *testing.T) {
	g := New(5)
	var reward float64
	terminal := false
	for i := 0; i < 500 && !terminal; i++ {
		reward, terminal = g.Step(ActLeft) // hard left into the wall
	}
	if !terminal || reward != -10 {
		t.Errorf("wall bump: reward=%v terminal=%v", reward, terminal)
	}
	if g.Success() {
		t.Error("bumped car reports success")
	}
}

// TestFig15Fig16Variables verifies the paper's pruning examples are
// reproduced: roll tracks posX (EucDist of scaled traces ≈ 0) and accX
// is near-constant (variance below the paper's 0.01 threshold).
func TestFig15Fig16Variables(t *testing.T) {
	g := New(6)
	rec := trace.NewRecorder()
	env.RunEpisode(g, func(e env.Env) int {
		rec.RecordAll(e.StateVars())
		return ScriptedPlayer(e)
	}, 400)

	if d := rec.Similarity("posX", "roll"); d > 0.01 {
		t.Errorf("EucDist(posX, roll) = %v, want ~0 (Fig. 15)", d)
	}
	if v := rec.Variance("accX"); v > 0.01 {
		t.Errorf("Variance(accX) = %v, want <= 0.01 (Fig. 16)", v)
	}
	if v := rec.Variance("posX"); v <= 0.01 {
		t.Errorf("posX variance %v too small for a driving trace", v)
	}
}

// TestAlgorithm2PrunesTORCS runs the full extraction with the paper's
// thresholds (ε₁=0, ε₂=0.01 per Section 6.3 — we use a small positive
// ε₁ since our duplicates are affine, as the paper's EucDist≈0 shows).
func TestAlgorithm2PrunesTORCS(t *testing.T) {
	g := New(7)
	depG := DepGraph()
	rec := trace.NewRecorder()
	env.RunEpisode(g, func(e env.Env) int {
		rec.RecordAll(e.StateVars())
		return ScriptedPlayer(e)
	}, 400)

	report := extract.RL(depG, rec, TargetVars(), env.SortedVarNames(g),
		extract.RLConfig{Epsilon1: 0.05, Epsilon2: 0.01})
	feats := report.Features["steer"]
	has := func(n string) bool {
		for _, f := range feats {
			if f == n {
				return true
			}
		}
		return false
	}
	// Exactly one of the posX-duplicate cluster survives.
	count := 0
	for _, n := range []string{"posX", "roll", "posXdup"} {
		if has(n) {
			count++
		}
	}
	if count != 1 {
		t.Errorf("posX cluster survivors = %d, want 1 (feats %v)", count, feats)
	}
	if has("accX") || has("gear") || has("damage") {
		t.Errorf("near-constant variables not pruned: %v", feats)
	}
	if len(feats) < 3 {
		t.Errorf("only %d features survived", len(feats))
	}
}

func TestSnapshotRestore(t *testing.T) {
	g := New(8)
	for i := 0; i < 100; i++ {
		g.Step(ScriptedPlayer(g))
	}
	snap := g.Snapshot()
	before := g.StateVars()["distRaced"]
	for i := 0; i < 100; i++ {
		g.Step(ScriptedPlayer(g))
	}
	g.Restore(snap)
	if g.StateVars()["distRaced"] != before {
		t.Error("restore did not roll back progress")
	}
}

func TestScreenRendersRoad(t *testing.T) {
	g := New(9)
	img := g.Screen()
	if img.W != 64 || img.H != 64 {
		t.Fatal("bad screen size")
	}
	// The bottom rows must contain road pixels (90) between walls.
	roadPixels := 0
	for x := 0; x < 64; x++ {
		if img.At(x, 60) == 90 {
			roadPixels++
		}
	}
	if roadPixels < 10 {
		t.Errorf("road not visible: %d road pixels in row 60", roadPixels)
	}
}

func TestScoreMonotone(t *testing.T) {
	g := New(10)
	prev := -1.0
	for i := 0; i < 200; i++ {
		_, term := g.Step(ScriptedPlayer(g))
		if term {
			break
		}
		if s := g.Score(); s < prev {
			t.Fatal("score decreased")
		} else {
			prev = s
		}
	}
	if math.IsNaN(prev) || prev <= 0 {
		t.Errorf("no progress made: %v", prev)
	}
}

func TestTrackDeterministicPerSeed(t *testing.T) {
	a, b := New(11), New(11)
	for i := range a.curv {
		if a.curv[i] != b.curv[i] {
			t.Fatal("same seed, different tracks")
		}
	}
}

func TestNumActionsAndTargets(t *testing.T) {
	if New(30).NumActions() != 3 {
		t.Error("NumActions wrong")
	}
	if len(TargetVars()) != 1 || TargetVars()[0] != "steer" {
		t.Errorf("TargetVars = %v", TargetVars())
	}
}

func TestFinishLine(t *testing.T) {
	g := New(31)
	g.state.Pos = trackLen - 0.5
	reward, terminal := g.Step(ActStraight)
	if !terminal || reward != 10 || !g.Success() || g.Score() != 1 {
		t.Errorf("finish: reward=%v terminal=%v success=%v score=%v",
			reward, terminal, g.Success(), g.Score())
	}
}
