// Package torcs implements the driving subject modeled on TORCS (The
// Open Racing Car Simulator), the paper's self-driving case study
// (Section 6.3, Fig. 17). The car follows a procedurally generated
// track of varying curvature; the annotated target variable is the
// steering command, and the internal state exposes exactly the
// variables the paper's pruning examples discuss: posX (lateral
// offset), roll (its near-duplicate, pruned by ε₁, Fig. 15) and accX
// (near-constant, pruned by ε₂, Fig. 16), alongside the genuinely
// informative track-geometry variables.
//
// The score is the paper's criterion: how far the car drives without
// bumping the wall before finishing.
package torcs

import (
	"math"

	"github.com/autonomizer/autonomizer/internal/dep"
	"github.com/autonomizer/autonomizer/internal/games/env"
	"github.com/autonomizer/autonomizer/internal/imaging"
	"github.com/autonomizer/autonomizer/internal/stats"
)

// Actions: the paper's three-way steering output ("left turn, right
// turn, and no turn").
const (
	ActStraight = iota
	ActLeft
	ActRight
	numActions
)

// Track and car constants.
const (
	trackLen    = 600.0 // track length in car-lengths
	halfWidth   = 4.0   // lateral half-width before the wall
	speed       = 1.0   // forward speed per step
	steerRate   = 0.12  // heading change per steering step (radians)
	headingDamp = 0.92
	segLen      = 25.0 // curvature segment length
)

// Game is one TORCS instance.
type Game struct {
	rng *stats.RNG
	// curvature per segment, the track layout (fixed per seed).
	curv  []float64
	state gameState
}

type gameState struct {
	Pos     float64 // distance along the track
	PosX    float64 // lateral offset from the centerline
	Heading float64 // angle relative to the track direction
	Speed   float64
	Bumped  bool
	Done    bool
	Steps   int
}

// New creates a game with a deterministic track from seed.
func New(seed uint64) *Game {
	g := &Game{rng: stats.NewRNG(seed)}
	n := int(trackLen/segLen) + 1
	g.curv = make([]float64, n)
	for i := range g.curv {
		// Alternate straights and corners of varying sharpness.
		if g.rng.Bool(0.45) {
			g.curv[i] = g.rng.Range(-0.05, 0.05)
		} else {
			g.curv[i] = 0
		}
	}
	g.Reset()
	return g
}

// Reset implements env.Env.
func (g *Game) Reset() {
	g.state = gameState{Speed: speed}
}

// NumActions implements env.Env.
func (g *Game) NumActions() int { return numActions }

// curvatureAt returns the track curvature at a distance.
func (g *Game) curvatureAt(pos float64) float64 {
	i := int(pos / segLen)
	if i < 0 {
		i = 0
	}
	if i >= len(g.curv) {
		i = len(g.curv) - 1
	}
	return g.curv[i]
}

// Step implements env.Env: one control-loop iteration.
func (g *Game) Step(action int) (float64, bool) {
	if g.state.Bumped || g.state.Done {
		return 0, true
	}
	g.state.Steps++
	switch action {
	case ActLeft:
		g.state.Heading -= steerRate
	case ActRight:
		g.state.Heading += steerRate
	}
	g.state.Heading *= headingDamp

	// The track curves under the car: curvature shifts the centerline,
	// which appears as lateral drift unless countered by steering.
	drift := g.curvatureAt(g.state.Pos) * g.state.Speed * 10
	g.state.PosX += math.Sin(g.state.Heading)*g.state.Speed + drift
	g.state.Pos += math.Cos(g.state.Heading) * g.state.Speed

	if math.Abs(g.state.PosX) > halfWidth {
		g.state.Bumped = true
		return -10, true
	}
	if g.state.Pos >= trackLen {
		g.state.Done = true
		return 10, true
	}
	// Reward centering and progress.
	return 0.5 - 0.1*math.Abs(g.state.PosX), false
}

// StateVars implements env.Env. posX/roll and accX reproduce the
// paper's Fig. 15/16 pruning examples; trackPos, angle and the
// curvature lookaheads are the informative features.
func (g *Game) StateVars() map[string]float64 {
	curNow := g.curvatureAt(g.state.Pos)
	curNext := g.curvatureAt(g.state.Pos + segLen/2)
	curFar := g.curvatureAt(g.state.Pos + segLen)
	return map[string]float64{
		"posX": g.state.PosX,
		// roll is a near-duplicate of posX (the Fig. 15 pruning example).
		"roll": g.state.PosX*0.95 + 0.01,
		// angle is exposed in degrees, as TORCS telemetry does.
		"angle":  g.state.Heading * 180 / math.Pi,
		"speedX": g.state.Speed,
		// accX is near-constant at cruise (the Fig. 16 pruning example).
		"accX":     9.8 + 0.001*math.Sin(float64(g.state.Steps)),
		"trackPos": g.state.PosX / halfWidth,
		// Curvatures are exposed in percent (100/radius), the usual
		// telemetry scaling.
		"curvNow":   curNow * 100,
		"curvNext":  curNext * 100,
		"curvFar":   curFar * 100,
		"distRaced": g.state.Pos,
		"progress":  g.state.Pos / trackLen,
		"wallDistL": halfWidth + g.state.PosX,
		"wallDistR": halfWidth - g.state.PosX,
		"steps":     float64(g.state.Steps),
		"rpm":       900 + 50*g.state.Speed, // constant at fixed speed
		"gear":      3,                      // constant
		"fuel":      100 - 0.001*float64(g.state.Steps),
		"damage":    0, // constant
		"lapTime":   float64(g.state.Steps) * 0.02,
		"posXdup":   g.state.PosX, // exact duplicate
	}
}

// Screen implements env.Env: a driver-view rendering of the road ahead.
func (g *Game) Screen() *imaging.Image {
	img := imaging.NewImage(64, 64)
	// Perspective road: for each screen row (bottom = near), compute
	// the road center from accumulated curvature and draw the walls.
	for row := 0; row < 64; row++ {
		dist := float64(row) * 0.8 // look-ahead distance for this row
		y := 63 - row
		curv := g.curvatureAt(g.state.Pos + dist)
		centerShift := -g.state.PosX - curv*dist*dist*0.4
		width := 30.0 * (1 - float64(row)/80.0)
		cx := 32 + centerShift*(width/halfWidth)/2
		l := int(cx - width/2)
		r := int(cx + width/2)
		for x := 0; x < 64; x++ {
			switch {
			case x == l || x == r:
				img.Set(x, y, 255) // wall markers
			case x > l && x < r:
				img.Set(x, y, 90) // road
			default:
				img.Set(x, y, 30) // grass
			}
		}
	}
	// Car marker at the bottom center.
	for dx := -2; dx <= 2; dx++ {
		img.Set(32+dx, 62, 200)
		img.Set(32+dx, 63, 200)
	}
	return img
}

// Score implements env.Env: distance fraction without bumping.
func (g *Game) Score() float64 {
	s := g.state.Pos / trackLen
	if s > 1 {
		s = 1
	}
	return s
}

// Success implements env.Env: finished without bumping the wall.
func (g *Game) Success() bool { return g.state.Done }

// Snapshot implements env.Env.
func (g *Game) Snapshot() any { return g.state }

// Restore implements env.Env.
func (g *Game) Restore(s any) { g.state = s.(gameState) }

// FeatureVarNames is the post-Algorithm-2 feature set (the paper
// reports twenty features for TORCS; ours is the informative core).
func FeatureVarNames() []string {
	return []string{"posX", "angle", "curvNow", "curvNext", "curvFar",
		"wallDistR", "distRaced"}
}

// TargetVars returns the annotated targets (the paper annotates steer
// for steering control).
func TargetVars() []string { return []string{"steer"} }

// DepGraph returns the control loop's dependence structure.
func DepGraph() *dep.Graph {
	g := dep.NewGraph()
	g.Def("angle", "angle", "steer")
	g.Def("posX", "posX", "angle", "curvNow")
	g.Def("roll", "posX")
	g.Def("posXdup", "posX")
	g.Def("trackPos", "posX")
	g.Def("wallDistL", "posX")
	g.Def("wallDistR", "posX")
	g.Def("distRaced", "distRaced", "angle")
	g.Def("progress", "distRaced")
	g.Def("curvNow", "distRaced")
	g.Def("curvNext", "distRaced")
	g.Def("curvFar", "distRaced")
	g.Def("bumped", "posX")
	g.Def("reward", "bumped", "posX", "progress")
	g.Def("speedX", "speedX")
	g.Def("accX", "steps")
	g.Def("rpm", "speedX")
	g.Def("lapTime", "steps")
	g.Def("fuel", "steps")
	g.Def("steps", "steps")
	// The rendered frame consumes the geometry the driver sees, and the
	// HUD telemetry consumes the derived read-only variables; both give
	// the duplicates and lookaheads downstream consumers, so they are
	// candidates for Algorithm 2 (and then pruning fodder).
	g.Def("screen", "curvNow", "curvNext", "curvFar", "posX", "angle")
	g.Def("telemetry", "roll", "posXdup", "trackPos", "wallDistL", "wallDistR",
		"rpm", "fuel", "lapTime", "accX", "gear", "damage", "speedX")
	for _, v := range []string{"posX", "roll", "posXdup", "angle", "trackPos",
		"wallDistL", "wallDistR", "distRaced", "progress", "curvNow", "curvNext",
		"curvFar", "bumped", "reward", "steer", "speedX", "accX", "rpm",
		"lapTime", "fuel", "steps", "gear", "damage", "screen", "telemetry"} {
		g.Use("controlLoop", v)
	}
	return g
}

// ScriptedPlayer is the reference driver: steer toward the centerline,
// anticipating the curve ahead.
func ScriptedPlayer(e env.Env) int {
	vars := e.StateVars()
	// Desired correction combines the current offset and the upcoming
	// curvature-induced drift.
	desired := -vars["posX"]*0.5 - (vars["curvNext"]/100)*25
	err := desired - (vars["angle"]*math.Pi/180)*3
	switch {
	case err < -0.08:
		return ActLeft
	case err > 0.08:
		return ActRight
	default:
		return ActStraight
	}
}
