// Package arkanoid implements the Arkanoid subject (the paper runs it
// on the LaiNES emulator and annotates the emulator's exported game
// state). Arkanoid extends the brick-breaker formula with a brick
// pattern containing hardened bricks (two hits) and a paddle-widening
// powerup that drops from certain bricks. The paper's score is the pair
// (percentage of cleared bricks, rate of clearing all bricks).
package arkanoid

import (
	"math"

	"github.com/autonomizer/autonomizer/internal/dep"
	"github.com/autonomizer/autonomizer/internal/games/env"
	"github.com/autonomizer/autonomizer/internal/imaging"
	"github.com/autonomizer/autonomizer/internal/stats"
)

// Actions.
const (
	ActStay = iota
	ActLeft
	ActRight
	numActions
)

// Field geometry.
const (
	fieldW    = 36.0
	fieldH    = 44.0
	basePadW  = 6.0
	widePadW  = 10.0
	paddleY   = 41.0
	brickRows = 5
	brickCols = 9
	brickW    = fieldW / brickCols
	brickH    = 1.6
	brickTop  = 5.0
	ballSpeed = 0.85
	paddleVel = 1.0
	powerVel  = 0.35
)

// Game is one Arkanoid instance.
type Game struct {
	rng   *stats.RNG
	state gameState
}

type powerup struct {
	X, Y   float64
	Active bool
}

type gameState struct {
	PaddleX      float64
	PaddleW      float64
	WideLeft     int // steps of widening remaining
	BallX, BallY float64
	VX, VY       float64
	// Bricks holds remaining hit points (0 = destroyed; hardened bricks
	// start at 2).
	Bricks  [brickRows * brickCols]int
	Total   int
	Cleared int
	Power   powerup
	Missed  bool
	Steps   int
}

// New creates a game with a deterministic brick pattern from seed.
func New(seed uint64) *Game {
	g := &Game{rng: stats.NewRNG(seed)}
	g.Reset()
	return g
}

// Reset implements env.Env.
func (g *Game) Reset() {
	g.state = gameState{
		PaddleX: fieldW / 2,
		PaddleW: basePadW,
		BallX:   fieldW / 2,
		BallY:   paddleY - 6,
	}
	angle := g.rng.Range(-0.5, 0.5)
	g.state.VX = ballSpeed * math.Sin(angle)
	g.state.VY = -ballSpeed * math.Cos(angle)
	for i := range g.state.Bricks {
		row := i / brickCols
		if row == 0 {
			g.state.Bricks[i] = 2 // top row is hardened
		} else {
			g.state.Bricks[i] = 1
		}
	}
	g.state.Total = len(g.state.Bricks)
}

// NumActions implements env.Env.
func (g *Game) NumActions() int { return numActions }

// Step implements env.Env.
func (g *Game) Step(action int) (float64, bool) {
	if g.state.Missed || g.state.Cleared == g.state.Total {
		return 0, true
	}
	g.state.Steps++
	switch action {
	case ActLeft:
		g.state.PaddleX -= paddleVel
	case ActRight:
		g.state.PaddleX += paddleVel
	}
	g.state.PaddleX = stats.Clamp(g.state.PaddleX, g.state.PaddleW/2, fieldW-g.state.PaddleW/2)

	// Widening timer.
	if g.state.WideLeft > 0 {
		g.state.WideLeft--
		if g.state.WideLeft == 0 {
			g.state.PaddleW = basePadW
		}
	}

	g.state.BallX += g.state.VX
	g.state.BallY += g.state.VY

	if g.state.BallX < 0 {
		g.state.BallX = -g.state.BallX
		g.state.VX = -g.state.VX
	}
	if g.state.BallX > fieldW {
		g.state.BallX = 2*fieldW - g.state.BallX
		g.state.VX = -g.state.VX
	}
	if g.state.BallY < 0 {
		g.state.BallY = -g.state.BallY
		g.state.VY = -g.state.VY
	}

	reward := 0.05

	// Brick collision.
	if g.state.BallY >= brickTop && g.state.BallY < brickTop+brickRows*brickH {
		row := int((g.state.BallY - brickTop) / brickH)
		col := int(g.state.BallX / brickW)
		if col >= 0 && col < brickCols && row >= 0 && row < brickRows {
			idx := row*brickCols + col
			if g.state.Bricks[idx] > 0 {
				g.state.Bricks[idx]--
				g.state.VY = -g.state.VY
				if g.state.Bricks[idx] == 0 {
					g.state.Cleared++
					reward = 1
					// Every third column drops a widening powerup.
					if col%3 == 1 && !g.state.Power.Active {
						g.state.Power = powerup{X: g.state.BallX, Y: g.state.BallY, Active: true}
					}
					if g.state.Cleared == g.state.Total {
						return reward + 10, true
					}
				} else {
					reward = 0.5 // chipped a hardened brick
				}
			}
		}
	}

	// Powerup falls; catching it widens the paddle.
	if g.state.Power.Active {
		g.state.Power.Y += powerVel
		if g.state.Power.Y >= paddleY &&
			math.Abs(g.state.Power.X-g.state.PaddleX) <= g.state.PaddleW/2 {
			g.state.Power.Active = false
			g.state.PaddleW = widePadW
			g.state.WideLeft = 600
			reward += 2
		} else if g.state.Power.Y > fieldH {
			g.state.Power.Active = false
		}
	}

	// Paddle bounce.
	if g.state.VY > 0 && g.state.BallY >= paddleY && g.state.BallY <= paddleY+1 {
		dx := g.state.BallX - g.state.PaddleX
		if math.Abs(dx) <= g.state.PaddleW/2+0.5 {
			angle := (dx / (g.state.PaddleW / 2)) * 1.0
			g.state.VX = ballSpeed * math.Sin(angle)
			g.state.VY = -ballSpeed * math.Cos(angle)
			g.state.BallY = paddleY - 0.01
		}
	}

	if g.state.BallY > fieldH {
		g.state.Missed = true
		return -10, true
	}
	return reward, false
}

// StateVars implements env.Env — the emulator-exported game variables
// the paper annotates, plus duplicates and constants.
func (g *Game) StateVars() map[string]float64 {
	return map[string]float64{
		"paddleX":   g.state.PaddleX,
		"paddleW":   g.state.PaddleW,
		"ballX":     g.state.BallX,
		"ballY":     g.state.BallY,
		"ballVX":    g.state.VX,
		"ballVY":    g.state.VY,
		"ballDX":    g.state.BallX - g.state.PaddleX,
		"powerX":    g.state.Power.X,
		"powerY":    g.state.Power.Y,
		"powerLive": bool2f(g.state.Power.Active),
		"cleared":   float64(g.state.Cleared),
		"remaining": float64(g.state.Total - g.state.Cleared),
		"wideLeft":  float64(g.state.WideLeft),
		"steps":     float64(g.state.Steps),
		"ballPx":    g.state.BallX * 2, // duplicate
		"padDup":    g.state.PaddleX,   // duplicate
		"fieldWc":   fieldW,            // constant
		"speedC":    ballSpeed,         // constant
	}
}

func bool2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Screen implements env.Env.
func (g *Game) Screen() *imaging.Image {
	img := imaging.NewImage(64, 64)
	sx := 64.0 / fieldW
	sy := 64.0 / fieldH
	for i, hp := range g.state.Bricks {
		if hp == 0 {
			continue
		}
		row, col := i/brickCols, i%brickCols
		v := 140.0
		if hp == 2 {
			v = 190
		}
		x0 := int(float64(col) * brickW * sx)
		y0 := int((brickTop + float64(row)*brickH) * sy)
		for y := y0; y < y0+2; y++ {
			for x := x0; x < x0+int(brickW*sx)-1; x++ {
				img.Set(x, y, v)
			}
		}
	}
	if g.state.Power.Active {
		img.Set(int(g.state.Power.X*sx), int(g.state.Power.Y*sy), 120)
	}
	py := int(paddleY * sy)
	for x := int((g.state.PaddleX - g.state.PaddleW/2) * sx); x <= int((g.state.PaddleX+g.state.PaddleW/2)*sx); x++ {
		img.Set(x, py, 220)
	}
	img.Set(int(g.state.BallX*sx), int(g.state.BallY*sy), 255)
	return img
}

// Score implements env.Env: percentage of cleared bricks (the X of the
// paper's X/Y Arkanoid score).
func (g *Game) Score() float64 {
	return float64(g.state.Cleared) / float64(g.state.Total)
}

// Success implements env.Env: all bricks cleared (the Y of X/Y).
func (g *Game) Success() bool { return g.state.Cleared == g.state.Total }

// Snapshot implements env.Env.
func (g *Game) Snapshot() any { return g.state }

// Restore implements env.Env.
func (g *Game) Restore(s any) { g.state = s.(gameState) }

// FeatureVarNames is the post-pruning feature set.
func FeatureVarNames() []string {
	return []string{"paddleX", "paddleW", "ballX", "ballY", "ballVX", "ballVY",
		"ballDX", "powerX", "powerY", "powerLive", "remaining"}
}

// TargetVars returns the annotated targets.
func TargetVars() []string { return []string{"actionKey"} }

// DepGraph returns the update loop's dependence structure.
func DepGraph() *dep.Graph {
	g := dep.NewGraph()
	g.Def("paddleX", "paddleX", "actionKey")
	g.Def("paddleW", "paddleW", "powerCaught")
	g.Def("ballX", "ballX", "ballVX")
	g.Def("ballY", "ballY", "ballVY")
	g.Def("ballVX", "ballVX", "bounce")
	g.Def("ballVY", "ballVY", "bounce")
	g.Def("ballDX", "ballX", "paddleX")
	g.Def("bounce", "ballDX", "ballY", "paddleW")
	g.Def("brickIdx", "ballX", "ballY")
	g.Def("cleared", "cleared", "brickIdx")
	g.Def("remaining", "cleared")
	g.Def("powerX", "brickIdx")
	g.Def("powerY", "powerY")
	g.Def("powerLive", "powerLive", "brickIdx")
	g.Def("powerCaught", "powerX", "powerY", "paddleX")
	g.Def("wideLeft", "wideLeft", "powerCaught")
	g.Def("reward", "cleared", "powerCaught", "bounce")
	g.Def("ballPx", "ballX")
	g.Def("padDup", "paddleX")
	g.Def("steps", "steps")
	// Rendering consumes the duplicates and constants.
	g.Def("screen", "ballPx", "padDup", "ballY", "remaining", "fieldWc", "speedC")
	for _, v := range []string{"paddleX", "paddleW", "ballX", "ballY", "ballVX", "ballVY",
		"ballDX", "bounce", "brickIdx", "cleared", "remaining", "powerX", "powerY",
		"powerLive", "powerCaught", "wideLeft", "reward", "actionKey",
		"ballPx", "padDup", "steps", "fieldWc", "speedC", "screen"} {
		g.Use("gameLoop", v)
	}
	return g
}

// ScriptedPlayer tracks the ball, detouring to catch powerups when the
// ball is heading up.
func ScriptedPlayer(e env.Env) int {
	vars := e.StateVars()
	target := vars["ballX"]
	if vars["powerLive"] == 1 && vars["ballVY"] < 0 {
		target = vars["powerX"]
	}
	dx := target - vars["paddleX"]
	switch {
	case dx < -0.7:
		return ActLeft
	case dx > 0.7:
		return ActRight
	default:
		return ActStay
	}
}
