package arkanoid

import (
	"testing"

	"github.com/autonomizer/autonomizer/internal/games/env"
)

func TestInterfaceCompliance(t *testing.T) {
	var _ env.Env = New(1)
}

func TestHardenedBricksTakeTwoHits(t *testing.T) {
	g := New(1)
	// Row 0 is hardened.
	if g.state.Bricks[0] != 2 {
		t.Errorf("top-row brick hp = %d, want 2", g.state.Bricks[0])
	}
	if g.state.Bricks[brickCols] != 1 {
		t.Errorf("second-row brick hp = %d, want 1", g.state.Bricks[brickCols])
	}
}

func TestScriptedPlayerClearsMost(t *testing.T) {
	g := New(2)
	score, _ := env.AverageScore(g, ScriptedPlayer, 5, 8000)
	if score < 0.4 {
		t.Errorf("scripted player cleared only %v", score)
	}
}

func TestStayLosesToTracking(t *testing.T) {
	idle := env.RunEpisode(New(3), func(env.Env) int { return ActStay }, 8000)
	track := env.RunEpisode(New(3), ScriptedPlayer, 8000)
	if idle.Score > track.Score {
		t.Errorf("idle %v outscored tracking %v", idle.Score, track.Score)
	}
}

func TestPowerupWidensPaddle(t *testing.T) {
	g := New(4)
	// Force a powerup right above the paddle.
	g.state.Power = powerup{X: g.state.PaddleX, Y: paddleY - 1, Active: true}
	w0 := g.state.PaddleW
	for i := 0; i < 10 && g.state.PaddleW == w0; i++ {
		g.Step(ActStay)
	}
	if g.state.PaddleW != widePadW {
		t.Errorf("paddle width = %v after catch, want %v", g.state.PaddleW, widePadW)
	}
	// Widening expires.
	g.state.WideLeft = 1
	g.Step(ActStay)
	if g.state.PaddleW != basePadW {
		t.Errorf("paddle width = %v after expiry, want %v", g.state.PaddleW, basePadW)
	}
}

func TestPowerupMissDeactivates(t *testing.T) {
	g := New(5)
	g.state.Power = powerup{X: 1, Y: fieldH - 0.1, Active: true}
	g.state.PaddleX = fieldW - basePadW/2 // far away
	for i := 0; i < 5; i++ {
		g.Step(ActStay)
	}
	if g.state.Power.Active {
		t.Error("missed powerup still active")
	}
}

func TestSnapshotRestore(t *testing.T) {
	g := New(6)
	for i := 0; i < 100; i++ {
		g.Step(ScriptedPlayer(g))
	}
	snap := g.Snapshot()
	before := g.Score()
	for i := 0; i < 500; i++ {
		if _, term := g.Step(ScriptedPlayer(g)); term {
			break
		}
	}
	g.Restore(snap)
	if g.Score() != before {
		t.Error("restore did not roll back cleared count")
	}
}

func TestVarsAndScreen(t *testing.T) {
	g := New(7)
	vars := g.StateVars()
	for _, n := range FeatureVarNames() {
		if _, ok := vars[n]; !ok {
			t.Errorf("missing %s", n)
		}
	}
	if vars["padDup"] != vars["paddleX"] {
		t.Error("duplicate out of sync")
	}
	img := g.Screen()
	lit := 0
	for _, v := range img.Pix {
		if v > 0 {
			lit++
		}
	}
	if lit < 50 {
		t.Errorf("screen nearly empty: %d", lit)
	}
}

func TestDepGraphShape(t *testing.T) {
	dg := DepGraph()
	if !dg.DependsOn("paddleX", "actionKey") {
		t.Error("paddleX must depend on actionKey")
	}
	if !dg.SharesUseFunction("powerX", "actionKey") {
		t.Error("powerX must share the game loop with dep(actionKey)")
	}
}

func TestScoreIsClearedFraction(t *testing.T) {
	g := New(8)
	if g.Score() != 0 {
		t.Error("fresh game has nonzero score")
	}
	g.state.Cleared = g.state.Total / 2
	want := float64(g.state.Total/2) / float64(g.state.Total)
	if g.Score() != want {
		t.Errorf("score = %v, want %v", g.Score(), want)
	}
}

func TestNumActionsAndTargets(t *testing.T) {
	if New(30).NumActions() != 3 {
		t.Error("NumActions wrong")
	}
	if len(TargetVars()) != 1 {
		t.Errorf("TargetVars = %v", TargetVars())
	}
}

func TestFullClearTerminal(t *testing.T) {
	g := New(31)
	for i := range g.state.Bricks {
		g.state.Bricks[i] = 0
	}
	g.state.Cleared = g.state.Total - 1
	g.state.Bricks[g.state.Total-1] = 1
	// Aim the ball so that after one step's motion it sits inside the
	// last brick (Step moves the ball before the collision check).
	row, col := (g.state.Total-1)/brickCols, (g.state.Total-1)%brickCols
	g.state.BallX = (float64(col) + 0.5) * brickW
	g.state.BallY = brickTop + (float64(row)+0.5)*brickH + 0.2
	g.state.VX = 0
	g.state.VY = -0.2
	reward, terminal := g.Step(ActStay)
	if !terminal || reward < 10 || !g.Success() {
		t.Errorf("full clear: reward=%v terminal=%v success=%v", reward, terminal, g.Success())
	}
}
