package mario

import (
	"testing"

	"github.com/autonomizer/autonomizer/internal/stats"
)

// TestLevelGeneratorInvariants checks the stage-design constraints the
// generator guarantees, across many seeds:
//
//   - ditches are 2-3 tiles wide with ground on both sides;
//   - no pipe stands within the landing zone before a ditch;
//   - no ditch is dug under the dungeon platform;
//   - goomba patrol spans avoid ditch edges;
//   - the flag pole stands on solid ground;
//   - the dungeon ceiling has exactly one hole, above the platform.
func TestLevelGeneratorInvariants(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		l := buildLevel(stats.NewRNG(seed))

		for _, d := range l.ditches {
			w := d[1] - d[0]
			if w < 2 || w > 3 {
				t.Errorf("seed %d: ditch %v width %d", seed, d, w)
			}
			if l.tiles[groundRow][d[0]-1] != tGround && l.tiles[groundRow][d[0]-1] != tPipe {
				t.Errorf("seed %d: ditch %v lacks a left lip", seed, d)
			}
			if d[1] < levelW && l.tiles[groundRow][d[1]] == tEmpty {
				t.Errorf("seed %d: ditch %v lacks a right lip", seed, d)
			}
			for x := d[0]; x < d[1]; x++ {
				for y := groundRow; y < levelH; y++ {
					if l.tiles[y][x] != tEmpty {
						t.Errorf("seed %d: ditch %v has solid tile at (%d,%d)", seed, d, x, y)
					}
				}
			}
			// Ditches stay clear of the dungeon platform's landing zone.
			if d[0] >= ceilingHoleX-14 && d[0] < ceilingHoleX+ceilingHoleW+5 {
				t.Errorf("seed %d: ditch %v under the dungeon platform", seed, d)
			}
		}

		for _, p := range l.pipeXs {
			for _, d := range l.ditches {
				if p >= d[0]-9 && p < d[1]+3 {
					t.Errorf("seed %d: pipe %d inside ditch %v landing zone", seed, p, d)
				}
			}
			// Pipes stand on ground.
			if l.tiles[groundRow][p] != tGround {
				t.Errorf("seed %d: pipe %d floats", seed, p)
			}
			// Pipe body is 2+ tiles tall.
			if l.tiles[groundRow-1][p] != tPipe || l.tiles[groundRow-2][p] != tPipe {
				t.Errorf("seed %d: pipe %d too short", seed, p)
			}
		}

		for _, gx := range l.goombaSpawns {
			for _, d := range l.ditches {
				if int(gx)+4 > d[0] && int(gx)-4 < d[1] {
					t.Errorf("seed %d: goomba at %.1f patrols into ditch %v", seed, gx, d)
				}
			}
		}

		// Flag pole on solid ground.
		if l.tiles[groundRow][flagX] != tGround {
			t.Errorf("seed %d: flag pole floats", seed)
		}
		if l.tiles[groundRow-1][flagX] != tFlag {
			t.Errorf("seed %d: flag pole missing", seed)
		}

		// Ceiling hole: exactly ceilingHoleW empty columns in the
		// ceiling row within the dungeon, at the hole position.
		holes := 0
		for x := dungeonX0; x < dungeonX1; x++ {
			if l.tiles[ceilingRow][x] == tEmpty {
				holes++
				if x < ceilingHoleX || x >= ceilingHoleX+ceilingHoleW {
					t.Errorf("seed %d: stray ceiling hole at %d", seed, x)
				}
			}
		}
		if holes != ceilingHoleW {
			t.Errorf("seed %d: %d ceiling holes, want %d", seed, holes, ceilingHoleW)
		}
		// The platform spans under the hole.
		for x := ceilingHoleX; x < ceilingHoleX+ceilingHoleW; x++ {
			if l.tiles[dungeonPlatformRow][x] != tBrick {
				t.Errorf("seed %d: platform missing under hole at %d", seed, x)
			}
		}
	}
}

// TestLevelDeterministicPerSeed pins the generator's determinism.
func TestLevelDeterministicPerSeed(t *testing.T) {
	a := buildLevel(stats.NewRNG(9))
	b := buildLevel(stats.NewRNG(9))
	if len(a.ditches) != len(b.ditches) || len(a.pipeXs) != len(b.pipeXs) {
		t.Fatal("same seed, different layout")
	}
	for y := range a.tiles {
		for x := range a.tiles[y] {
			if a.tiles[y][x] != b.tiles[y][x] {
				t.Fatalf("same seed, different tile at (%d,%d)", x, y)
			}
		}
	}
}

// TestSolidAtBounds checks the map-boundary conventions the physics
// relies on: side edges are walls, above/below the map is open.
func TestSolidAtBounds(t *testing.T) {
	l := buildLevel(stats.NewRNG(1))
	if !l.solidAt(-1, 5) || !l.solidAt(levelW+1, 5) {
		t.Error("level edges not walls")
	}
	if l.solidAt(50, -3) {
		t.Error("above the map is solid")
	}
	if l.solidAt(50, levelH+2) {
		t.Error("below the map is solid")
	}
}

// TestNextDistances checks the lookahead helpers.
func TestNextDistances(t *testing.T) {
	l := buildLevel(stats.NewRNG(1))
	if len(l.ditches) == 0 || len(l.pipeXs) == 0 {
		t.Fatal("layout empty")
	}
	first := float64(l.ditches[0][0])
	if got := l.nextDitchDist(first - 5); got != 5 {
		t.Errorf("nextDitchDist = %v, want 5", got)
	}
	// Past the last ditch: sentinel.
	if got := l.nextDitchDist(float64(levelW)); got != 999 {
		t.Errorf("nextDitchDist past end = %v, want 999", got)
	}
	p := float64(l.pipeXs[0])
	if got := l.nextPipeDist(p - 3); got != 3 {
		t.Errorf("nextPipeDist = %v, want 3", got)
	}
	if got := l.nextPipeDist(float64(levelW)); got != 999 {
		t.Errorf("nextPipeDist past end = %v, want 999", got)
	}
}
