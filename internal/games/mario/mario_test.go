package mario

import (
	"strings"
	"testing"

	"github.com/autonomizer/autonomizer/internal/coverage"
	"github.com/autonomizer/autonomizer/internal/extract"
	"github.com/autonomizer/autonomizer/internal/games/env"
	"github.com/autonomizer/autonomizer/internal/trace"
)

func TestInterfaceCompliance(t *testing.T) {
	var _ env.Env = New(1, Options{})
}

func TestResetRespawns(t *testing.T) {
	g := New(1, Options{})
	for i := 0; i < 50; i++ {
		g.Step(ActRight)
	}
	g.Reset()
	if g.StateVars()["playerX"] != 2.5 {
		t.Errorf("reset X = %v", g.StateVars()["playerX"])
	}
	if g.Score() != 0 {
		t.Error("reset did not clear score")
	}
}

func TestRightMovesForward(t *testing.T) {
	g := New(2, Options{})
	x0 := g.StateVars()["playerX"]
	r, term := g.Step(ActRight)
	if term {
		t.Fatal("immediate terminal")
	}
	if g.StateVars()["playerX"] <= x0 {
		t.Error("right did not advance")
	}
	if r != 2 {
		t.Errorf("forward reward = %v, want 2 (Fig. 2)", r)
	}
}

func TestStallPenalty(t *testing.T) {
	g := New(3, Options{})
	g.Step(ActRight)
	if r, _ := g.Step(ActLeft); r != -1 {
		t.Errorf("stall reward = %v, want -1 (Fig. 2)", r)
	}
}

func TestJumpOnlyFromGround(t *testing.T) {
	g := New(4, Options{})
	// Settle onto the ground first: the spawn point is slightly above
	// the surface.
	for i := 0; i < 10 && g.StateVars()["onGround"] == 0; i++ {
		g.Step(ActNoop)
	}
	g.Step(ActJump)
	vy1 := g.StateVars()["playerVY"]
	if vy1 >= 0 {
		t.Error("grounded jump did not launch")
	}
	g.Step(ActJump) // airborne: must not re-launch
	vy2 := g.StateVars()["playerVY"]
	if vy2 < vy1 {
		t.Error("airborne jump re-launched")
	}
}

func TestScriptedPlayerProgressesFar(t *testing.T) {
	g := New(5, Options{})
	score, _ := env.AverageScore(g, ScriptedPlayer, 3, 3000)
	if score < 0.5 {
		t.Errorf("scripted player only reaches %v of the stage", score)
	}
}

func TestLeftOnlyGoesNowhere(t *testing.T) {
	g := New(6, Options{})
	res := env.RunEpisode(g, func(env.Env) int { return ActLeft }, 300)
	if res.Score > 0.05 {
		t.Errorf("left-only play scored %v", res.Score)
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	g := New(7, Options{})
	for i := 0; i < 30; i++ {
		g.Step(ActRight)
	}
	snap := g.Snapshot()
	before := g.StateVars()
	for i := 0; i < 50; i++ {
		g.Step(ActRightJump)
	}
	g.Restore(snap)
	after := g.StateVars()
	for _, k := range []string{"playerX", "playerY", "steps", "progress"} {
		if before[k] != after[k] {
			t.Errorf("%s not restored: %v -> %v", k, before[k], after[k])
		}
	}
}

func TestSnapshotIsolatedFromLiveGoombas(t *testing.T) {
	g := New(8, Options{})
	snap := g.Snapshot()
	for i := 0; i < 100; i++ {
		g.Step(ActNoop) // goombas patrol
	}
	g.Restore(snap)
	snap2 := g.Snapshot()
	a := snap.(gameState).Goombas
	b := snap2.(gameState).Goombas
	for i := range a {
		if a[i].X != b[i].X {
			t.Fatal("snapshot goombas were mutated by live play")
		}
	}
}

func TestStateVarsIncludeAnnotatedSet(t *testing.T) {
	g := New(9, Options{})
	vars := g.StateVars()
	for _, n := range append(FeatureVarNames(), "pX", "mnX", "accG", "gravityC") {
		if _, ok := vars[n]; !ok {
			t.Errorf("StateVars missing %s", n)
		}
	}
	if vars["pX"] != vars["playerX"] {
		t.Error("pX duplicate out of sync")
	}
}

func TestCoverageInstrumentation(t *testing.T) {
	cov := coverage.New(BasicBlocks())
	g := New(10, Options{Coverage: cov})
	env.RunEpisode(g, ScriptedPlayer, 2000)
	if cov.Covered() < 10 {
		t.Errorf("one episode covered only %d blocks", cov.Covered())
	}
	// Straight-line play must leave blocks uncovered (the testing
	// headroom the coverage reward exploits).
	if cov.Coverage() >= 1 {
		t.Error("scripted play covered everything; no testing headroom")
	}
	for _, must := range []string{"loop.right", "reward.forward"} {
		if cov.Hits(must) == 0 {
			t.Errorf("block %s never hit", must)
		}
	}
}

func TestBugCrashesOnlyWhenArmed(t *testing.T) {
	// With the bug disabled, forcing the player above the dungeon
	// ceiling is clamped, not a crash.
	g := New(11, Options{})
	g.state.X = ceilingHoleX
	g.state.Y = 0.6
	g.state.VY = -0.8 // rising through the ceiling hole
	func() {
		defer func() {
			if recover() != nil {
				t.Error("fixed build crashed")
			}
		}()
		g.Step(ActNoop)
	}()

	armed := New(11, Options{BugEnabled: true})
	armed.state.X = ceilingHoleX
	armed.state.Y = 0.6
	armed.state.VY = -0.8
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("armed bug did not crash")
		}
		if _, ok := r.(CrashError); !ok {
			t.Fatalf("crash value %T, want CrashError", r)
		}
	}()
	armed.Step(ActNoop)
}

func TestScreenRendering(t *testing.T) {
	g := New(12, Options{})
	img := g.Screen()
	if img.W != 64 || img.H != 64 {
		t.Fatalf("screen %dx%d", img.W, img.H)
	}
	lit := 0
	for _, v := range img.Pix {
		if v > 0 {
			lit++
		}
	}
	if lit < 100 {
		t.Errorf("screen nearly empty: %d", lit)
	}
}

// TestAlgorithm2OnMarioGraph runs RL feature extraction over the game's
// dependence graph and real play traces, checking the Fig. 10 outcomes:
// playerX survives, the duplicates (pX, mnX) are pruned by ε₁, and the
// constants (accG) by ε₂.
func TestAlgorithm2OnMarioGraph(t *testing.T) {
	g := New(13, Options{})
	depG := DepGraph()
	rec := trace.NewRecorder()
	env.RunEpisode(g, func(e env.Env) int {
		rec.RecordAll(e.StateVars())
		return ScriptedPlayer(e)
	}, 400)

	progVars := env.SortedVarNames(g)
	report := extract.RL(depG, rec, TargetVars(), progVars, extract.RLConfig{
		Epsilon1: 1e-6, Epsilon2: 0.01,
	})
	feats := report.Features["actionKey"]
	has := func(n string) bool {
		for _, f := range feats {
			if f == n {
				return true
			}
		}
		return false
	}
	// Exactly one of each duplicate pair survives ε₁ pruning — the
	// algorithm keeps whichever it visits first, the paper's Fig. 10
	// keeps Player->X and prunes mX; either member carries the same
	// information.
	if has("playerX") == has("pX") {
		t.Errorf("duplicate pair playerX/pX not deduplicated to one: %v", feats)
	}
	if has("minionDX") == has("mnX") {
		t.Errorf("duplicate pair minionDX/mnX not deduplicated to one: %v", feats)
	}
	if has("accG") || has("gravityC") {
		t.Errorf("constants not pruned: %v", feats)
	}
	if len(feats) < 5 {
		t.Errorf("only %d features survived", len(feats))
	}
}

func TestRewardShapeMatchesPaper(t *testing.T) {
	// Death by ditch must be -10 and terminal. Place the player just
	// before the first ditch and walk in without jumping.
	g := New(14, Options{})
	d := g.level.ditches[0]
	g.state.X = float64(d[0]) - 0.6
	g.state.MaxX = g.state.X
	var reward float64
	var term bool
	for i := 0; i < 60 && !term; i++ {
		reward, term = g.Step(ActRight)
	}
	if !term || reward != -10 {
		t.Errorf("ditch death: reward=%v terminal=%v", reward, term)
	}
}

func TestNumActionsAndTargets(t *testing.T) {
	g := New(20, Options{})
	if g.NumActions() != 5 {
		t.Errorf("NumActions = %d", g.NumActions())
	}
	if len(TargetVars()) != 1 || TargetVars()[0] != "actionKey" {
		t.Errorf("TargetVars = %v", TargetVars())
	}
}

func TestLandingY(t *testing.T) {
	g := New(21, Options{})
	// Standing on the ground: landing is the ground surface.
	g.state.X, g.state.Y = 5, 12.5
	if got := g.landingY(); got != 12.5 {
		t.Errorf("landingY on ground = %v, want 12.5", got)
	}
	// Above the dungeon platform: landing is the platform top.
	g.state.X, g.state.Y = ceilingHoleX, 5
	if got := g.landingY(); got != float64(dungeonPlatformRow)-0.5 {
		t.Errorf("landingY above platform = %v, want %v", got, float64(dungeonPlatformRow)-0.5)
	}
	// Over a ditch: below the map.
	d := g.level.ditches[0]
	g.state.X, g.state.Y = float64(d[0])+0.5, 10
	if got := g.landingY(); got <= float64(levelH) {
		t.Errorf("landingY over ditch = %v, want below map", got)
	}
}

func TestCrashErrorMessage(t *testing.T) {
	err := CrashError{X: 134.7, Y: 3.4}
	if !strings.Contains(err.Error(), "boundary check") || !strings.Contains(err.Error(), "134.7") {
		t.Errorf("Error = %q", err.Error())
	}
}

func TestScoreClamped(t *testing.T) {
	g := New(22, Options{})
	g.state.MaxX = flagX * 2
	if g.Score() != 1 {
		t.Errorf("Score = %v, want clamped 1", g.Score())
	}
}
