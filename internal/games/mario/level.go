package mario

import (
	"sort"

	"github.com/autonomizer/autonomizer/internal/stats"
)

// Tile kinds.
type tile byte

const (
	tEmpty tile = iota
	tGround
	tPipe
	tBrick
	tCeiling
	tFlag
)

// Level geometry constants.
const (
	levelW = 220
	levelH = 16
	// groundRow is the top row of solid ground.
	groundRow = 13
	// flagX is the flag-pole column; reaching it clears the stage.
	flagX = 212
	// Dungeon region: a ceiling runs over [dungeonX0, dungeonX1) with a
	// hole the agent can (unexpectedly) jump through — the terrain of
	// the paper's boundary-check bug.
	dungeonX0, dungeonX1 = 120, 150
	ceilingRow           = 4
	ceilingHoleX         = 133
	ceilingHoleW         = 4
	dungeonPlatformRow   = 8
	dungeonStairX        = 125
)

// level is the static tile map plus entity spawn points.
type level struct {
	tiles [][]tile // [y][x]
	// goombaSpawns and mushroomX are deterministic per seed.
	goombaSpawns []float64
	mushroomX    float64
	// ditches lists [start, end) column ranges with no ground.
	ditches [][2]int
	// pipeXs lists pipe columns.
	pipeXs []int
}

// buildLevel generates the deterministic stage layout for a seed.
func buildLevel(rng *stats.RNG) *level {
	l := &level{tiles: make([][]tile, levelH)}
	for y := range l.tiles {
		l.tiles[y] = make([]tile, levelW)
	}
	// Solid ground.
	for y := groundRow; y < levelH; y++ {
		for x := 0; x < levelW; x++ {
			l.tiles[y][x] = tGround
		}
	}
	// Ditches: 2-3 tiles wide, spaced 25-40 columns, none too close to
	// the start or the flag.
	x := 20 + rng.Intn(10)
	for x < flagX-25 {
		// The dungeon platform hangs low enough to interrupt a ditch
		// jump, so no ditch is dug under or just before it.
		if x >= ceilingHoleX-14 && x < ceilingHoleX+ceilingHoleW+5 {
			x = ceilingHoleX + ceilingHoleW + 5
		}
		w := 2 + rng.Intn(2)
		l.ditches = append(l.ditches, [2]int{x, x + w})
		for y := groundRow; y < levelH; y++ {
			for d := 0; d < w; d++ {
				l.tiles[y][x+d] = tEmpty
			}
		}
		x += 25 + rng.Intn(16)
	}
	// Pipes: height 2-3, on solid ground away from ditches. A pipe
	// right before a ditch would demand a pixel-perfect double jump, so
	// the generator keeps a landing zone clear after each pipe.
	nearDitch := func(x int) bool {
		for _, d := range l.ditches {
			if x >= d[0]-9 && x < d[1]+3 {
				return true
			}
		}
		return false
	}
	inDungeonZone := func(x int) bool {
		return x >= dungeonX0-4 && x < dungeonX1
	}
	px := 14 + rng.Intn(8)
	for px < flagX-20 {
		if l.tiles[groundRow][px] == tGround && l.tiles[groundRow][px+1] == tGround &&
			!nearDitch(px) && !nearDitch(px+1) && !inDungeonZone(px) {
			h := 2 + rng.Intn(2)
			for dy := 1; dy <= h; dy++ {
				l.tiles[groundRow-dy][px] = tPipe
				l.tiles[groundRow-dy][px+1] = tPipe
			}
			l.pipeXs = append(l.pipeXs, px)
		}
		px += 30 + rng.Intn(20)
	}
	// Dungeon ceiling with a hole, and a brick platform under the hole
	// from which a (unexpected) jump can pass through — the terrain of
	// the missed-boundary-check bug.
	for cx := dungeonX0; cx < dungeonX1; cx++ {
		if cx >= ceilingHoleX && cx < ceilingHoleX+ceilingHoleW {
			continue
		}
		l.tiles[ceilingRow][cx] = tCeiling
	}
	for cx := ceilingHoleX - 3; cx <= ceilingHoleX+ceilingHoleW+2; cx++ {
		l.tiles[dungeonPlatformRow][cx] = tBrick
	}
	// The dungeon stair: a tall pipe before the platform, the stepping
	// stone that makes the platform (and through it the ceiling hole)
	// reachable — the level structure whose missing boundary check the
	// self-testing study rediscovers.
	for dy := 1; dy <= 3; dy++ {
		l.tiles[groundRow-dy][dungeonStairX] = tPipe
		l.tiles[groundRow-dy][dungeonStairX+1] = tPipe
	}
	l.pipeXs = append(l.pipeXs, dungeonStairX)
	sort.Ints(l.pipeXs) // nextPipeDist scans in ascending order
	// Bricks with a mushroom above the first pipe region. They hang low
	// enough to interrupt a jump, so they also stay clear of ditches.
	bx := 40 + rng.Intn(12)
	for nearDitch(bx) || nearDitch(bx+3) {
		bx += 3
	}
	for dx := 0; dx < 3; dx++ {
		if l.tiles[groundRow-4][bx+dx] == tEmpty {
			l.tiles[groundRow-4][bx+dx] = tBrick
		}
	}
	l.mushroomX = float64(bx+1) + 0.5
	// Flag pole.
	for y := groundRow - 8; y < groundRow; y++ {
		l.tiles[y][flagX] = tFlag
	}
	// Goombas: 4-6 patrollers on open ground. Their ±3-tile patrols
	// must not cross ditch edges (they would fall in), so spawns keep
	// clear of ditches.
	n := 4 + rng.Intn(3)
	for i := 0; i < n; i++ {
		gx := 25 + rng.Float64()*float64(flagX-50)
		for tries := 0; tries < 20 && (nearDitch(int(gx)-4) || nearDitch(int(gx)+4)); tries++ {
			gx = 25 + rng.Float64()*float64(flagX-50)
		}
		l.goombaSpawns = append(l.goombaSpawns, gx)
	}
	return l
}

// solidAt reports whether the tile containing (x, y) blocks movement.
func (l *level) solidAt(x, y float64) bool {
	tx, ty := int(x), int(y)
	if tx < 0 || tx >= levelW {
		return true // level edges are walls
	}
	if ty < 0 || ty >= levelH {
		return false // above/below the map is open (the bug's terrain)
	}
	switch l.tiles[ty][tx] {
	case tGround, tPipe, tBrick, tCeiling:
		return true
	default:
		return false
	}
}

// nextDitchDist returns the distance from x to the next ditch start, or
// a large value if none remains.
func (l *level) nextDitchDist(x float64) float64 {
	for _, d := range l.ditches {
		if float64(d[0]) >= x {
			return float64(d[0]) - x
		}
	}
	return 999
}

// nextPipeDist returns the distance from x to the next pipe column.
func (l *level) nextPipeDist(x float64) float64 {
	for _, p := range l.pipeXs {
		if float64(p) >= x {
			return float64(p) - x
		}
	}
	return 999
}
