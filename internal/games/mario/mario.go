// Package mario implements the platformer subject of the paper's
// running example (Fig. 2): a tile-based side-scroller with goombas,
// pipes, ditches, a mushroom, a flag pole and a dungeon section. The
// action space has the paper's five actions; the reward shape matches
// Fig. 2 (+2 for forward progress, -1 otherwise, +10 flag, -10 death,
// and optionally +30 for new code coverage in self-testing mode).
//
// The package also carries the bug the paper's self-testing AI found: a
// missed boundary check that lets the player jump through the dungeon
// ceiling and leave the screen, crashing the program. The bug is behind
// Options.BugEnabled so ordinary training is unaffected.
package mario

import (
	"fmt"
	"math"

	"github.com/autonomizer/autonomizer/internal/coverage"
	"github.com/autonomizer/autonomizer/internal/dep"
	"github.com/autonomizer/autonomizer/internal/games/env"
	"github.com/autonomizer/autonomizer/internal/imaging"
	"github.com/autonomizer/autonomizer/internal/stats"
)

// The five actions of the paper's annotation (au_write_back("output",
// 5, actionKey)).
const (
	ActNoop = iota
	ActLeft
	ActRight
	ActJump
	ActRightJump
	numActions
)

// Physics constants.
const (
	moveVel   = 0.30
	gravity   = 0.12
	jumpImp   = -1.05
	maxFall   = 1.2
	goombaVel = 0.06
)

// Options configure a game instance.
type Options struct {
	// BugEnabled arms the missed boundary check in the dungeon ceiling;
	// Step panics when the player leaves the screen, reproducing the
	// crash the self-testing AI found.
	BugEnabled bool
	// Coverage, when set, receives basic-block hits during play.
	Coverage *coverage.Map
}

// Game is one Mario instance.
type Game struct {
	rng   *stats.RNG
	opts  Options
	level *level
	state gameState
}

type goomba struct {
	X, Y   float64
	Dir    float64
	Dead   bool
	SpawnX float64
}

type gameState struct {
	X, Y, VX, VY float64
	OnGround     bool
	Dead         bool
	Cleared      bool
	Steps        int
	Squashed     int
	MushroomGot  bool
	Goombas      []goomba
	MaxX         float64
}

// CrashError is the panic value raised by the armed bug.
type CrashError struct {
	X, Y float64
}

// Error implements error.
func (c CrashError) Error() string {
	return fmt.Sprintf("mario: segmentation fault: player at (%.1f, %.1f) left the screen (missed boundary check)", c.X, c.Y)
}

// BasicBlocks lists every instrumented block; the coverage map for the
// self-testing study is built over these.
func BasicBlocks() []string {
	return []string{
		"loop.noop", "loop.left", "loop.right", "loop.jump", "loop.rightjump",
		"move.accelLeft", "move.accelRight", "move.friction",
		"jump.grounded", "jump.airborne",
		"collide.wallLeft", "collide.wallRight", "collide.land", "collide.ceiling",
		"fall.ditch", "fall.maxVel",
		"goomba.patrol", "goomba.turn", "goomba.squash", "goomba.kill",
		"mushroom.eat", "mushroom.skip",
		"pipe.blocked", "pipe.cleared",
		"dungeon.enter", "dungeon.inside", "dungeon.ceilingHole", "dungeon.aboveCeiling",
		"flag.reach", "death.fall", "death.goomba",
		"reward.forward", "reward.stall", "reward.terminalFlag", "reward.terminalDeath",
		"screen.leftEdge",
		// Level-script blocks: each stage region and object has its own
		// handling code (spawn triggers, camera scripting); covering
		// them requires actually getting there.
		"region.x20", "region.x40", "region.x60", "region.x80", "region.x100",
		"region.x120", "region.x140", "region.x160", "region.x180", "region.x200",
		"object.ditch0", "object.ditch1", "object.ditch2", "object.ditch3",
		"object.pipe0", "object.pipe1", "object.pipe2", "object.pipe3",
		"dungeon.platform",
	}
}

// New creates a game with a deterministic level from seed.
func New(seed uint64, opts Options) *Game {
	g := &Game{rng: stats.NewRNG(seed), opts: opts}
	g.level = buildLevel(g.rng.Split())
	g.Reset()
	return g
}

// Reset implements env.Env: respawn at the start with fresh goombas.
func (g *Game) Reset() {
	goombas := make([]goomba, len(g.level.goombaSpawns))
	for i, gx := range g.level.goombaSpawns {
		// Goombas stand on the ground at the same height convention as
		// the player (center half a tile above the surface).
		goombas[i] = goomba{X: gx, Y: groundRow - 0.5, Dir: 1, SpawnX: gx}
	}
	g.state = gameState{X: 2.5, Y: groundRow - 1, Goombas: goombas}
}

// NumActions implements env.Env.
func (g *Game) NumActions() int { return numActions }

func (g *Game) hit(block string) {
	if g.opts.Coverage != nil {
		g.opts.Coverage.Hit(block)
	}
}

// Step implements env.Env, advancing one game-loop iteration.
func (g *Game) Step(action int) (float64, bool) {
	if g.state.Dead || g.state.Cleared {
		return 0, true
	}
	g.state.Steps++
	prevX := g.state.X

	// Horizontal control.
	switch action {
	case ActLeft:
		g.hit("loop.left")
		g.hit("move.accelLeft")
		g.state.VX = -moveVel
	case ActRight:
		g.hit("loop.right")
		g.hit("move.accelRight")
		g.state.VX = moveVel
	case ActJump:
		g.hit("loop.jump")
		g.state.VX *= 0.8
		g.hit("move.friction")
	case ActRightJump:
		g.hit("loop.rightjump")
		g.state.VX = moveVel
	default:
		g.hit("loop.noop")
		g.state.VX *= 0.8
		g.hit("move.friction")
	}
	// Jumping.
	if action == ActJump || action == ActRightJump {
		if g.state.OnGround {
			g.hit("jump.grounded")
			g.state.VY = jumpImp
			g.state.OnGround = false
		} else {
			g.hit("jump.airborne")
		}
	}

	// Gravity.
	g.state.VY += gravity
	if g.state.VY > maxFall {
		g.hit("fall.maxVel")
		g.state.VY = maxFall
	}

	// Horizontal collision.
	nx := g.state.X + g.state.VX
	if g.state.VX > 0 && g.solidAtBody(nx+0.4, g.state.Y) {
		g.hit("collide.wallRight")
		if g.level.nextPipeDist(g.state.X) < 1.5 {
			g.hit("pipe.blocked")
		}
		nx = g.state.X
	} else if g.state.VX < 0 && g.solidAtBody(nx-0.4, g.state.Y) {
		g.hit("collide.wallLeft")
		nx = g.state.X
	}
	if nx < 0.5 {
		g.hit("screen.leftEdge")
		nx = 0.5
	}
	g.state.X = nx

	// Vertical collision.
	ny := g.state.Y + g.state.VY
	if g.state.VY > 0 { // falling
		// Sweep the feet from the current to the target position in
		// sub-tile increments: fall speed can exceed a tile per step,
		// and a single endpoint probe would tunnel through thin floors.
		feet := g.state.Y + 0.5
		targetFeet := ny + 0.5
		landed := false
		for f := feet + 0.25; f < targetFeet+0.25; f += 0.25 {
			if f > targetFeet {
				f = targetFeet
			}
			if g.level.solidAt(g.state.X, f) {
				g.hit("collide.land")
				g.state.Y = math.Floor(f) - 0.5
				g.state.VY = 0
				g.state.OnGround = true
				landed = true
				break
			}
		}
		if !landed {
			g.state.Y = ny
			g.state.OnGround = false
		}
	} else if g.state.VY < 0 { // rising
		if g.level.solidAt(g.state.X, ny-0.5) {
			g.hit("collide.ceiling")
			g.state.VY = 0
		} else {
			g.state.Y = ny
			g.state.OnGround = false
		}
	}

	// Dungeon bookkeeping and the armed bug.
	if g.state.X >= dungeonX0 && g.state.X < dungeonX1 {
		if prevX < dungeonX0 {
			g.hit("dungeon.enter")
		}
		g.hit("dungeon.inside")
		if g.state.Y < ceilingRow && g.state.X >= ceilingHoleX-1 && g.state.X < ceilingHoleX+ceilingHoleW+1 {
			g.hit("dungeon.ceilingHole")
		}
		if g.state.Y < ceilingRow-0.5 {
			g.hit("dungeon.aboveCeiling")
		}
		if g.state.Y < float64(ceilingRow)-0.5 {
			// The missed boundary check: above the dungeon ceiling the
			// player is outside the visible screen, and the original
			// code indexes the screen buffer with the player's row.
			if g.opts.BugEnabled {
				panic(CrashError{X: g.state.X, Y: g.state.Y})
			}
			g.state.Y = float64(ceilingRow) - 0.5 // the fixed build clamps
		}
	}

	// Ditch death.
	if g.state.Y > float64(levelH) {
		g.hit("fall.ditch")
		g.hit("death.fall")
		g.state.Dead = true
		g.hit("reward.terminalDeath")
		return -10, true
	}

	// Goomba updates and collision.
	for i := range g.state.Goombas {
		gb := &g.state.Goombas[i]
		if gb.Dead {
			continue
		}
		g.hit("goomba.patrol")
		gb.X += gb.Dir * goombaVel
		if math.Abs(gb.X-gb.SpawnX) > 3 || g.level.solidAt(gb.X+gb.Dir*0.5, gb.Y) {
			g.hit("goomba.turn")
			gb.Dir = -gb.Dir
		}
		if math.Abs(gb.X-g.state.X) < 0.6 && math.Abs(gb.Y-g.state.Y) < 0.8 {
			if g.state.VY > 0 && g.state.Y < gb.Y-0.2 {
				g.hit("goomba.squash")
				gb.Dead = true
				g.state.Squashed++
				g.state.VY = jumpImp / 2 // bounce
			} else {
				g.hit("goomba.kill")
				g.hit("death.goomba")
				g.state.Dead = true
				g.hit("reward.terminalDeath")
				return -10, true
			}
		}
	}

	// Mushroom.
	if !g.state.MushroomGot &&
		math.Abs(g.state.X-g.level.mushroomX) < 0.7 &&
		math.Abs(g.state.Y-(groundRow-5)) < 1.0 {
		g.hit("mushroom.eat")
		g.state.MushroomGot = true
	} else if !g.state.MushroomGot {
		g.hit("mushroom.skip")
	}

	// Level-script region and object triggers (coverage blocks gated on
	// real progress).
	if region := int(g.state.X / 20); region >= 1 && region <= 10 {
		g.hit(fmt.Sprintf("region.x%d", region*20))
	}
	for i, d := range g.level.ditches {
		if i < 4 && g.state.X > float64(d[1]) && prevX <= float64(d[1]) {
			g.hit(fmt.Sprintf("object.ditch%d", i))
		}
	}
	for i, p := range g.level.pipeXs {
		if i < 4 && g.state.X > float64(p+2) && prevX <= float64(p+2) {
			g.hit(fmt.Sprintf("object.pipe%d", i))
		}
	}
	if g.state.Y < float64(dungeonPlatformRow)-0.4 && g.state.X >= ceilingHoleX-3 && g.state.X <= ceilingHoleX+ceilingHoleW+2 {
		g.hit("dungeon.platform")
	}

	// Flag.
	if g.state.X >= flagX-0.5 {
		g.hit("flag.reach")
		g.state.Cleared = true
		g.hit("reward.terminalFlag")
		return 10, true
	}
	if pd := g.level.nextPipeDist(prevX); pd < 0.5 && g.level.nextPipeDist(g.state.X) > pd {
		g.hit("pipe.cleared")
	}

	// Progress reward, per Fig. 2.
	if g.state.X > g.state.MaxX+1e-9 {
		g.state.MaxX = g.state.X
		g.hit("reward.forward")
		return 2, false
	}
	g.hit("reward.stall")
	return -1, false
}

// solidAtBody checks both the feet and head rows of the 1-tall body.
func (g *Game) solidAtBody(x, y float64) bool {
	return g.level.solidAt(x, y+0.4) || g.level.solidAt(x, y-0.4)
}

// nearestGoomba returns the relative offset of the closest live goomba,
// or (999, 0) when none remain.
func (g *Game) nearestGoomba() (dx, dy float64) {
	best := math.Inf(1)
	dx, dy = 999, 0
	for i := range g.state.Goombas {
		gb := &g.state.Goombas[i]
		if gb.Dead {
			continue
		}
		d := math.Abs(gb.X - g.state.X)
		if d < best {
			best = d
			dx = gb.X - g.state.X
			dy = gb.Y - g.state.Y
		}
	}
	return dx, dy
}

// StateVars implements env.Env. The set mirrors the Fig. 2 annotations
// (player and minion positions, the object ahead) plus the redundant
// and constant variables a 21K-line game actually carries.
func (g *Game) StateVars() map[string]float64 {
	gdx, gdy := g.nearestGoomba()
	vars := map[string]float64{
		"playerX":   g.state.X,
		"playerY":   g.state.Y,
		"playerVX":  g.state.VX,
		"playerVY":  g.state.VY,
		"onGround":  bool2f(g.state.OnGround),
		"minionDX":  gdx,
		"minionDY":  gdy,
		"ditchDist": g.level.nextDitchDist(g.state.X),
		"pipeDist":  g.level.nextPipeDist(g.state.X),
		"flagDist":  flagX - g.state.X,
		"mushDX":    g.level.mushroomX - g.state.X,
		"mushGot":   bool2f(g.state.MushroomGot),
		"progress":  g.state.X / flagX,
		"maxX":      g.state.MaxX,
		"steps":     float64(g.state.Steps),
		"squashed":  float64(g.state.Squashed),
		"inDungeon": bool2f(g.state.X >= dungeonX0 && g.state.X < dungeonX1),
		"objAhead":  g.objAhead(),
		// Redundant duplicates (Algorithm 2's ε₁ prunes these).
		"pX":       g.state.X,
		"screenPX": g.state.X * 16,
		"mnX":      gdx,
		// Constants (ε₂ prunes these).
		"gravityC": gravity,
		"jumpC":    jumpImp,
		"worldW":   levelW,
		"accG":     9.8,
	}
	return vars
}

// landingY returns the y the player would land at if dropped from the
// current position: the row above the first solid tile below. Values
// below the map mean a ditch is underfoot.
func (g *Game) landingY() float64 {
	start := int(g.state.Y + 0.5)
	if start < 0 {
		start = 0
	}
	for ty := start; ty < levelH; ty++ {
		if g.level.solidAt(g.state.X, float64(ty)+0.5) {
			return float64(ty) - 0.5
		}
	}
	return float64(levelH) + 1
}

// objAhead encodes what the player faces within 2 tiles: 0 none, 1
// pipe, 2 ditch, 3 goomba — the player.front check of Fig. 2.
func (g *Game) objAhead() float64 {
	if d, _ := g.nearestGoomba(); d > 0 && d < 2 {
		return 3
	}
	if g.level.nextDitchDist(g.state.X) < 2 {
		return 2
	}
	if g.level.nextPipeDist(g.state.X) < 2 {
		return 1
	}
	return 0
}

func bool2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Screen implements env.Env: a 64×64 window centered on the player.
func (g *Game) Screen() *imaging.Image {
	img := imaging.NewImage(64, 64)
	const px = 4 // pixels per tile
	originX := g.state.X - 8
	for ty := 0; ty < levelH; ty++ {
		for tx := 0; tx < levelW; tx++ {
			if g.level.tiles[ty][tx] == tEmpty {
				continue
			}
			var v float64
			switch g.level.tiles[ty][tx] {
			case tGround:
				v = 120
			case tPipe:
				v = 170
			case tBrick:
				v = 150
			case tCeiling:
				v = 100
			case tFlag:
				v = 220
			}
			sx := int((float64(tx) - originX) * px)
			sy := ty * px
			for dy := 0; dy < px; dy++ {
				for dx := 0; dx < px; dx++ {
					img.Set(sx+dx, sy+dy, v)
				}
			}
		}
	}
	for i := range g.state.Goombas {
		gb := &g.state.Goombas[i]
		if gb.Dead {
			continue
		}
		sx := int((gb.X - originX) * px)
		sy := int(gb.Y * px)
		for dy := 0; dy < px; dy++ {
			for dx := 0; dx < px; dx++ {
				img.Set(sx+dx, sy+dy, 200)
			}
		}
	}
	sx := int((g.state.X - originX) * px)
	sy := int(g.state.Y * px)
	for dy := -px / 2; dy < px; dy++ {
		for dx := 0; dx < px; dx++ {
			img.Set(sx+dx, sy+dy, 255)
		}
	}
	return img
}

// Score implements env.Env: progress fraction (the X of the paper's
// X/Y Mario score).
func (g *Game) Score() float64 {
	s := g.state.MaxX / flagX
	if s > 1 {
		s = 1
	}
	return s
}

// Success implements env.Env: stage cleared (the Y of X/Y).
func (g *Game) Success() bool { return g.state.Cleared }

// Snapshot implements env.Env.
func (g *Game) Snapshot() any {
	cp := g.state
	cp.Goombas = append([]goomba(nil), g.state.Goombas...)
	return cp
}

// Restore implements env.Env.
func (g *Game) Restore(s any) {
	snap := s.(gameState)
	snap.Goombas = append([]goomba(nil), snap.Goombas...)
	g.state = snap
}

// FeatureVarNames is the post-Algorithm-2 feature set used by the All
// configuration.
func FeatureVarNames() []string {
	return []string{
		"playerX", "playerY", "playerVX", "playerVY", "onGround",
		"minionDX", "minionDY", "ditchDist", "pipeDist", "objAhead",
	}
}

// TargetVars returns the annotated target variables.
func TargetVars() []string { return []string{"actionKey"} }

// DepGraph returns the dynamic dependence graph of the game loop for
// Algorithm 2 (the Fig. 10 structure, at full scale).
func DepGraph() *dep.Graph {
	g := dep.NewGraph()
	g.Def("playerVX", "actionKey")
	g.Def("playerVY", "playerVY", "actionKey")
	g.Def("playerX", "playerX", "playerVX")
	g.Def("playerY", "playerY", "playerVY")
	g.Def("onGround", "playerY")
	g.Def("speed", "playerVX", "playerVY")
	g.Def("minionX", "minionX")
	g.Def("minionY", "minionY")
	g.Def("minionDX", "minionX", "playerX")
	g.Def("minionDY", "minionY", "playerY")
	g.Def("mnX", "minionDX")
	g.Def("pX", "playerX")
	g.Def("screenPX", "playerX")
	g.Def("collide", "minionDX", "minionDY", "pX")
	g.Def("ditchDist", "playerX")
	g.Def("pipeDist", "playerX")
	g.Def("flagDist", "playerX")
	g.Def("mushDX", "playerX")
	g.Def("objAhead", "minionDX", "ditchDist", "pipeDist")
	g.Def("progress", "playerX")
	g.Def("maxX", "maxX", "playerX")
	g.Def("reward", "maxX", "collide", "progress")
	g.Def("terminated", "collide", "progress")
	g.Def("steps", "steps")
	g.Def("squashed", "squashed", "collide")
	g.Def("inDungeon", "playerX")
	g.Def("mushGot", "mushGot", "mushDX")
	g.Def("gravityUse", "gravityC")
	g.Def("jumpUse", "jumpC")
	loopVars := []string{
		"playerX", "playerY", "playerVX", "playerVY", "onGround", "speed",
		"minionX", "minionY", "minionDX", "minionDY", "mnX", "pX", "screenPX",
		"collide", "ditchDist", "pipeDist", "flagDist", "mushDX", "objAhead",
		"progress", "maxX", "reward", "terminated", "actionKey", "steps",
		"squashed", "inDungeon", "mushGot", "gravityC", "jumpC", "worldW", "accG",
	}
	for _, v := range loopVars {
		g.Use("gameLoop", v)
	}
	g.Use("minionCollision", "minionX")
	g.Use("minionCollision", "minionY")
	g.Use("updatePlayer", "playerX")
	g.Use("updatePlayer", "playerY")
	return g
}

// ScriptedPlayer is the reference controller (human-player stand-in):
// run right, jumping from the ground when a ditch, pipe or goomba is
// imminently ahead. Jump timing matters: jumping too early off a
// goomba cue lands inside the next ditch, so ditches take priority and
// trigger only inside the safe take-off window.
func ScriptedPlayer(e env.Env) int {
	vars := e.StateVars()
	if vars["onGround"] == 1 {
		if d := vars["ditchDist"]; d < 1.6 {
			// Late take-off clears even 3-wide ditches: the jump arc
			// covers ~5 tiles.
			return ActRightJump
		}
		if p := vars["pipeDist"]; p < 2 {
			// Jumping a pipe is safe even with a ditch right behind it:
			// the landing is the pipe top, from which the ditch rule
			// fires on the next grounded frame.
			return ActRightJump
		}
		if dx := vars["minionDX"]; dx > 0 && dx < 1.6 {
			if d := vars["ditchDist"]; d > 1.6 && d < 5.2 {
				// A forward jump here would land in the ditch; hop in
				// place instead and squash the goomba on the way down.
				return ActJump
			}
			return ActRightJump
		}
	}
	// Airborne handling. A descent that would land at or in a ditch
	// (e.g. after a goomba-squash bounce near the edge) brakes hard and
	// lands short, letting the grounded ditch rule take a clean jump.
	// Rising trajectories are left alone: interfering with a ditch
	// jump's ascent shortens it into the ditch.
	if vars["onGround"] == 0 {
		// Descending onto a raised surface (a pipe top): land freely and
		// let the grounded rules take the next decision.
		overPlatform := vars["landingY"] < float64(groundRow)-1
		// The in-place goomba hop: while over the goomba with the ditch
		// still ahead, hold position (rising) or actively brake
		// (descending) so the landing squashes the goomba instead of
		// carrying into the ditch.
		if d := vars["ditchDist"]; !overPlatform && d > 0.5 && d < 5.2 &&
			vars["minionDX"] > -2.5 && vars["minionDX"] < 2.5 {
			if vars["playerVY"] > 0 {
				return ActLeft
			}
			return ActNoop
		}
		// Emergency brake: descending to ground level right at a ditch
		// edge (e.g. after a squash bounce).
		if d := vars["ditchDist"]; !overPlatform && vars["playerVY"] > 0 && d < 2.5 && vars["playerY"] > 11.5 {
			return ActLeft
		}
	}
	return ActRight
}
