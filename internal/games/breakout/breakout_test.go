package breakout

import (
	"testing"

	"github.com/autonomizer/autonomizer/internal/games/env"
)

func TestInterfaceCompliance(t *testing.T) {
	var _ env.Env = New(1)
}

func TestResetRestoresBricks(t *testing.T) {
	g := New(1)
	env.RunEpisode(g, ScriptedPlayer, 2000)
	g.Reset()
	if g.Score() != 0 {
		t.Error("reset did not restore bricks")
	}
}

func TestScriptedPlayerHitsBricks(t *testing.T) {
	g := New(2)
	score, _ := env.AverageScore(g, ScriptedPlayer, 5, 5000)
	if score < 10 {
		t.Errorf("scripted player hit only %v bricks on average", score)
	}
}

func TestStayOnlyMissesEventually(t *testing.T) {
	g := New(3)
	res := env.RunEpisode(g, func(env.Env) int { return ActStay }, 5000)
	if res.Success {
		t.Error("motionless paddle cleared the game")
	}
	// Score must be below a tracking player's.
	tracked := env.RunEpisode(New(3), ScriptedPlayer, 5000)
	if res.Score > tracked.Score {
		t.Errorf("motionless %v outscored tracking %v", res.Score, tracked.Score)
	}
}

func TestBallBouncesOffWalls(t *testing.T) {
	g := New(4)
	for i := 0; i < 3000; i++ {
		_, term := g.Step(ScriptedPlayer(g))
		v := g.StateVars()
		if v["ballX"] < -1 || v["ballX"] > fieldW+1 || v["ballY"] < -1 {
			t.Fatalf("ball escaped the field: (%v, %v)", v["ballX"], v["ballY"])
		}
		if term {
			break
		}
	}
}

func TestPaddleClamped(t *testing.T) {
	g := New(5)
	for i := 0; i < 200; i++ {
		g.Step(ActLeft)
	}
	if x := g.StateVars()["paddleX"]; x < paddleW/2-1e-9 {
		t.Errorf("paddle left the field: %v", x)
	}
	for i := 0; i < 400; i++ {
		g.Step(ActRight)
	}
	if x := g.StateVars()["paddleX"]; x > fieldW-paddleW/2+1e-9 {
		t.Errorf("paddle left the field: %v", x)
	}
}

func TestSnapshotRestore(t *testing.T) {
	g := New(6)
	for i := 0; i < 50; i++ {
		g.Step(ScriptedPlayer(g))
	}
	snap := g.Snapshot()
	before := g.StateVars()
	for i := 0; i < 100; i++ {
		g.Step(ActLeft)
	}
	g.Restore(snap)
	after := g.StateVars()
	for _, k := range []string{"ballX", "ballY", "paddleX", "hitCount"} {
		if before[k] != after[k] {
			t.Errorf("%s not restored", k)
		}
	}
}

func TestScreenAndVars(t *testing.T) {
	g := New(7)
	img := g.Screen()
	if img.W != 64 || img.H != 64 {
		t.Fatal("bad screen size")
	}
	vars := g.StateVars()
	for _, n := range FeatureVarNames() {
		if _, ok := vars[n]; !ok {
			t.Errorf("missing feature var %s", n)
		}
	}
	if vars["ballXdup"] != vars["ballX"] {
		t.Error("duplicate out of sync")
	}
}

func TestDepGraphShape(t *testing.T) {
	g := DepGraph()
	if !g.SharesUseFunction("ballX", "actionKey") {
		t.Error("ballX does not share a use function with dep(actionKey)")
	}
	if !g.DependsOn("paddleX", "actionKey") {
		t.Error("paddleX must depend on actionKey")
	}
}

func TestRewardOnBrickHit(t *testing.T) {
	g := New(8)
	var got float64
	for i := 0; i < 3000; i++ {
		r, term := g.Step(ScriptedPlayer(g))
		if r >= 1 {
			got = r
			break
		}
		if term {
			t.Fatal("episode ended before any brick hit")
		}
	}
	if got < 1 {
		t.Error("no brick reward observed")
	}
}

func TestNumActionsAndTargets(t *testing.T) {
	if New(30).NumActions() != 3 {
		t.Error("NumActions wrong")
	}
	if len(TargetVars()) != 1 {
		t.Errorf("TargetVars = %v", TargetVars())
	}
}

func TestFullClearTerminal(t *testing.T) {
	g := New(31)
	for i := range g.state.Bricks {
		g.state.Bricks[i] = false
	}
	g.state.Hit = len(g.state.Bricks) - 1
	g.state.Bricks[0] = true
	// Position so the post-move ball sits inside the brick.
	g.state.BallX = brickW / 2
	g.state.BallY = brickTop + brickH/2 + 0.2
	g.state.VX = 0
	g.state.VY = -0.2
	reward, terminal := g.Step(ActStay)
	if !terminal || reward < 10 || !g.Success() {
		t.Errorf("full clear: reward=%v terminal=%v success=%v", reward, terminal, g.Success())
	}
}
