// Package breakout implements the Atari-style Breakout subject (the
// paper evaluates on the Stella emulator; here the game itself is the
// substrate). A paddle deflects a ball into a wall of bricks; the
// paper's score for this game is "the number of hit bricks before
// missing the ball" — note it is the one benchmark where the Raw
// (DeepMind) model also trains within budget, because the playing field
// is simple.
package breakout

import (
	"math"

	"github.com/autonomizer/autonomizer/internal/dep"
	"github.com/autonomizer/autonomizer/internal/games/env"
	"github.com/autonomizer/autonomizer/internal/imaging"
	"github.com/autonomizer/autonomizer/internal/stats"
)

// Actions.
const (
	ActStay = iota
	ActLeft
	ActRight
	numActions
)

// Field geometry.
const (
	fieldW    = 32.0
	fieldH    = 40.0
	paddleW   = 5.0
	paddleY   = 37.0
	brickRows = 4
	brickCols = 8
	brickW    = fieldW / brickCols
	brickH    = 1.5
	brickTop  = 4.0
	ballSpeed = 0.8
	paddleVel = 0.9
)

// Game is one Breakout instance.
type Game struct {
	rng   *stats.RNG
	state gameState
}

type gameState struct {
	PaddleX      float64
	BallX, BallY float64
	VX, VY       float64
	Bricks       [brickRows * brickCols]bool
	Hit          int
	Missed       bool
	Steps        int
}

// New creates a game; the serve angle varies with the seeded RNG.
func New(seed uint64) *Game {
	g := &Game{rng: stats.NewRNG(seed)}
	g.Reset()
	return g
}

// Reset implements env.Env.
func (g *Game) Reset() {
	g.state = gameState{
		PaddleX: fieldW / 2,
		BallX:   fieldW / 2,
		BallY:   paddleY - 6,
	}
	angle := g.rng.Range(-0.6, 0.6)
	g.state.VX = ballSpeed * math.Sin(angle)
	g.state.VY = -ballSpeed * math.Cos(angle)
	for i := range g.state.Bricks {
		g.state.Bricks[i] = true
	}
}

// NumActions implements env.Env.
func (g *Game) NumActions() int { return numActions }

// Step implements env.Env.
func (g *Game) Step(action int) (float64, bool) {
	if g.state.Missed || g.state.Hit == len(g.state.Bricks) {
		return 0, true
	}
	g.state.Steps++
	switch action {
	case ActLeft:
		g.state.PaddleX -= paddleVel
	case ActRight:
		g.state.PaddleX += paddleVel
	}
	g.state.PaddleX = stats.Clamp(g.state.PaddleX, paddleW/2, fieldW-paddleW/2)

	g.state.BallX += g.state.VX
	g.state.BallY += g.state.VY

	// Side and top walls.
	if g.state.BallX < 0 {
		g.state.BallX = -g.state.BallX
		g.state.VX = -g.state.VX
	}
	if g.state.BallX > fieldW {
		g.state.BallX = 2*fieldW - g.state.BallX
		g.state.VX = -g.state.VX
	}
	if g.state.BallY < 0 {
		g.state.BallY = -g.state.BallY
		g.state.VY = -g.state.VY
	}

	reward := 0.05 // staying alive

	// Brick collision.
	if g.state.BallY >= brickTop && g.state.BallY < brickTop+brickRows*brickH {
		row := int((g.state.BallY - brickTop) / brickH)
		col := int(g.state.BallX / brickW)
		if col >= 0 && col < brickCols && row >= 0 && row < brickRows {
			idx := row*brickCols + col
			if g.state.Bricks[idx] {
				g.state.Bricks[idx] = false
				g.state.Hit++
				g.state.VY = -g.state.VY
				reward = 1
				if g.state.Hit == len(g.state.Bricks) {
					return reward + 10, true
				}
			}
		}
	}

	// Paddle bounce: deflection angle depends on where the ball lands
	// on the paddle, giving the agent aiming control.
	if g.state.VY > 0 && g.state.BallY >= paddleY && g.state.BallY <= paddleY+1 {
		dx := g.state.BallX - g.state.PaddleX
		if math.Abs(dx) <= paddleW/2+0.5 {
			angle := (dx / (paddleW / 2)) * 1.0 // radians from vertical
			g.state.VX = ballSpeed * math.Sin(angle)
			g.state.VY = -ballSpeed * math.Cos(angle)
			g.state.BallY = paddleY - 0.01
		}
	}

	// Miss.
	if g.state.BallY > fieldH {
		g.state.Missed = true
		return -10, true
	}
	return reward, false
}

// StateVars implements env.Env, with the usual informative variables
// plus duplicates and constants for the pruning algorithms.
func (g *Game) StateVars() map[string]float64 {
	remaining := 0
	for _, b := range g.state.Bricks {
		if b {
			remaining++
		}
	}
	return map[string]float64{
		"paddleX":   g.state.PaddleX,
		"ballX":     g.state.BallX,
		"ballY":     g.state.BallY,
		"ballVX":    g.state.VX,
		"ballVY":    g.state.VY,
		"ballDX":    g.state.BallX - g.state.PaddleX,
		"bricksUp":  float64(remaining),
		"hitCount":  float64(g.state.Hit),
		"steps":     float64(g.state.Steps),
		"paddlePx":  g.state.PaddleX * 2, // duplicate
		"ballXdup":  g.state.BallX,       // duplicate
		"fieldWc":   fieldW,              // constant
		"paddleWc":  paddleW,             // constant
		"ballSpeed": ballSpeed,           // constant
	}
}

// Screen implements env.Env.
func (g *Game) Screen() *imaging.Image {
	img := imaging.NewImage(64, 64)
	sx := 64.0 / fieldW
	sy := 64.0 / fieldH
	for i, alive := range g.state.Bricks {
		if !alive {
			continue
		}
		row, col := i/brickCols, i%brickCols
		x0 := int(float64(col) * brickW * sx)
		y0 := int((brickTop + float64(row)*brickH) * sy)
		for y := y0; y < y0+2; y++ {
			for x := x0; x < x0+int(brickW*sx)-1; x++ {
				img.Set(x, y, 160)
			}
		}
	}
	// Paddle.
	py := int(paddleY * sy)
	for x := int((g.state.PaddleX - paddleW/2) * sx); x <= int((g.state.PaddleX+paddleW/2)*sx); x++ {
		img.Set(x, py, 220)
		img.Set(x, py+1, 220)
	}
	// Ball.
	img.Set(int(g.state.BallX*sx), int(g.state.BallY*sy), 255)
	return img
}

// Score implements env.Env: the number of bricks hit (the paper reports
// this unnormalized for Breakout, e.g. "29.8").
func (g *Game) Score() float64 { return float64(g.state.Hit) }

// Success implements env.Env: full clear.
func (g *Game) Success() bool { return g.state.Hit == len(g.state.Bricks) }

// Snapshot implements env.Env.
func (g *Game) Snapshot() any { return g.state }

// Restore implements env.Env.
func (g *Game) Restore(s any) { g.state = s.(gameState) }

// FeatureVarNames is the post-pruning feature set.
func FeatureVarNames() []string {
	return []string{"paddleX", "ballX", "ballY", "ballVX", "ballVY", "ballDX"}
}

// TargetVars returns the annotated targets. The paper annotates the
// emulator for Breakout, exporting the game variables directly.
func TargetVars() []string { return []string{"actionKey"} }

// DepGraph returns the update loop's dependence structure.
func DepGraph() *dep.Graph {
	g := dep.NewGraph()
	g.Def("paddleX", "paddleX", "actionKey")
	g.Def("ballX", "ballX", "ballVX")
	g.Def("ballY", "ballY", "ballVY")
	g.Def("ballVX", "ballVX", "bounce")
	g.Def("ballVY", "ballVY", "bounce")
	g.Def("ballDX", "ballX", "paddleX")
	g.Def("bounce", "ballDX", "ballY")
	g.Def("brickIdx", "ballX", "ballY")
	g.Def("bricksUp", "bricksUp", "brickIdx")
	g.Def("hitCount", "hitCount", "brickIdx")
	g.Def("reward", "hitCount", "bounce")
	g.Def("paddlePx", "paddleX")
	g.Def("ballXdup", "ballX")
	g.Def("steps", "steps")
	// The renderer consumes the scaled duplicates and constants, giving
	// them downstream consumers (candidates for Algorithm 2, then
	// pruning fodder).
	g.Def("screen", "paddlePx", "ballXdup", "ballY", "bricksUp", "fieldWc", "paddleWc", "ballSpeed")
	for _, v := range []string{"paddleX", "ballX", "ballY", "ballVX", "ballVY", "ballDX",
		"bounce", "brickIdx", "bricksUp", "hitCount", "reward", "actionKey",
		"paddlePx", "ballXdup", "steps", "fieldWc", "paddleWc", "ballSpeed", "screen"} {
		g.Use("gameLoop", v)
	}
	return g
}

// ScriptedPlayer tracks the ball with the paddle.
func ScriptedPlayer(e env.Env) int {
	vars := e.StateVars()
	dx := vars["ballDX"]
	switch {
	case dx < -0.6:
		return ActLeft
	case dx > 0.6:
		return ActRight
	default:
		return ActStay
	}
}
