// Package env defines the common shape of Autonomizer's interactive
// (reinforcement-learning) subjects: the five game/driving simulators
// the paper evaluates. Each environment exposes
//
//   - a discrete action interface driven once per main-loop iteration;
//   - its internal program state (StateVars) — the variables the "All"
//     configuration extracts as model inputs;
//   - a rendered screen (Screen) — what the DeepMind-style "Raw"
//     configuration consumes;
//   - a score in the paper's per-game sense (progress / success rate /
//     bricks hit);
//   - snapshot/restore of its full state, which is what au_checkpoint
//     and au_restore operate on.
package env

import (
	"sort"

	"github.com/autonomizer/autonomizer/internal/imaging"
)

// Env is one interactive subject program.
type Env interface {
	// Reset restarts a fresh episode.
	Reset()
	// Step advances one main-loop iteration with the given action,
	// returning the paper-style reward and whether an end state (death,
	// flag, finish line) was reached.
	Step(action int) (reward float64, terminal bool)
	// NumActions reports the discrete action count.
	NumActions() int
	// StateVars returns the current internal program variables by name.
	// The map is freshly allocated each call.
	StateVars() map[string]float64
	// Screen renders the current frame as a grayscale image.
	Screen() *imaging.Image
	// Score reports the episode's progress metric in [0, 1] (for
	// Breakout: bricks hit, unnormalized, per the paper).
	Score() float64
	// Success reports whether the episode reached its goal (flag,
	// finish, full clear).
	Success() bool
	// Snapshot/Restore implement ckpt.Snapshotter over σ.
	Snapshot() any
	Restore(snapshot any)
}

// StateVector flattens selected StateVars into a feature vector in the
// given name order — the bridge between an environment and au_extract.
func StateVector(e Env, names []string) []float64 {
	vars := e.StateVars()
	out := make([]float64, len(names))
	for i, n := range names {
		out[i] = vars[n]
	}
	return out
}

// SortedVarNames returns all state-variable names in sorted order.
func SortedVarNames(e Env) []string {
	vars := e.StateVars()
	out := make([]string, 0, len(vars))
	for k := range vars {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Policy selects an action for the current state.
type Policy func(e Env) int

// EpisodeResult summarizes one play-through.
type EpisodeResult struct {
	Score   float64
	Success bool
	Steps   int
	Reward  float64
}

// RunEpisode plays one episode with the policy, bounded by maxSteps.
func RunEpisode(e Env, p Policy, maxSteps int) EpisodeResult {
	e.Reset()
	var res EpisodeResult
	for res.Steps = 0; res.Steps < maxSteps; res.Steps++ {
		r, terminal := e.Step(p(e))
		res.Reward += r
		if terminal {
			res.Steps++
			break
		}
	}
	res.Score = e.Score()
	res.Success = e.Success()
	return res
}

// AverageScore plays n episodes and reports the mean score and success
// rate — the paper's "average of 10 runs" protocol.
func AverageScore(e Env, p Policy, episodes, maxSteps int) (score, successRate float64) {
	for i := 0; i < episodes; i++ {
		res := RunEpisode(e, p, maxSteps)
		score += res.Score
		if res.Success {
			successRate++
		}
	}
	return score / float64(episodes), successRate / float64(episodes)
}

// RawState flattens the downsampled screen into the Raw model's input
// vector, pixel values scaled to [0, 1].
func RawState(e Env, downsample int) []float64 {
	img := e.Screen()
	if downsample > 1 {
		img = imaging.Downsample(img, downsample)
	}
	out := make([]float64, len(img.Pix))
	for i, v := range img.Pix {
		out[i] = v / 255
	}
	return out
}
