package env

import "github.com/autonomizer/autonomizer/internal/parallel"

// ParallelAverageScore plays episodes concurrently and reports the mean
// score and success rate, the fan-out counterpart of AverageScore. Each
// episode owns a private environment and policy built by the factories
// (called from worker goroutines — they must not hand out shared mutable
// state), and results are reduced in episode order, so the outcome is
// bit-identical at any worker count, including 1.
func ParallelAverageScore(newEnv func(episode int) Env, newPolicy func(episode int) Policy,
	episodes, maxSteps int) (score, successRate float64) {
	results := make([]EpisodeResult, episodes)
	parallel.For(episodes, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			results[i] = RunEpisode(newEnv(i), newPolicy(i), maxSteps)
		}
	})
	for _, res := range results {
		score += res.Score
		if res.Success {
			successRate++
		}
	}
	return score / float64(episodes), successRate / float64(episodes)
}
