package env

import (
	"context"

	"github.com/autonomizer/autonomizer/internal/parallel"
)

// ParallelAverageScore plays episodes concurrently and reports the mean
// score and success rate, the fan-out counterpart of AverageScore. Each
// episode owns a private environment and policy built by the factories
// (called from worker goroutines — they must not hand out shared mutable
// state), and results are reduced in episode order, so the outcome is
// bit-identical at any worker count, including 1.
func ParallelAverageScore(newEnv func(episode int) Env, newPolicy func(episode int) Policy,
	episodes, maxSteps int) (score, successRate float64) {
	results := make([]EpisodeResult, episodes)
	parallel.For(episodes, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			results[i] = RunEpisode(newEnv(i), newPolicy(i), maxSteps)
		}
	})
	for _, res := range results {
		score += res.Score
		if res.Success {
			successRate++
		}
	}
	return score / float64(episodes), successRate / float64(episodes)
}

// ParallelAverageScoreCtx is the context-aware ParallelAverageScore: a
// canceled context stops scheduling episodes at the next chunk boundary
// and returns an error wrapping auerr.ErrCanceled (and the context's
// cause). The episode is the atomic unit — episodes already dispatched
// run to completion, but their partial tally is discarded because a mean
// over an unplanned subset of episodes would not be comparable to a full
// evaluation.
func ParallelAverageScoreCtx(ctx context.Context, newEnv func(episode int) Env, newPolicy func(episode int) Policy,
	episodes, maxSteps int) (score, successRate float64, err error) {
	results := make([]EpisodeResult, episodes)
	err = parallel.ForCtx(ctx, episodes, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			results[i] = RunEpisode(newEnv(i), newPolicy(i), maxSteps)
		}
	})
	if err != nil {
		return 0, 0, err
	}
	for _, res := range results {
		score += res.Score
		if res.Success {
			successRate++
		}
	}
	return score / float64(episodes), successRate / float64(episodes), nil
}
