package env

import (
	"testing"

	"github.com/autonomizer/autonomizer/internal/imaging"
)

// stubEnv is a minimal environment: walk right n steps to win.
type stubEnv struct {
	pos    int
	goal   int
	screen *imaging.Image
	resets int
}

func newStub(goal int) *stubEnv {
	return &stubEnv{goal: goal, screen: imaging.NewImage(8, 8)}
}

func (s *stubEnv) Reset()          { s.pos = 0; s.resets++ }
func (s *stubEnv) NumActions() int { return 2 }

func (s *stubEnv) Step(action int) (float64, bool) {
	if action == 1 {
		s.pos++
	}
	if s.pos >= s.goal {
		return 10, true
	}
	return 1, false
}

func (s *stubEnv) StateVars() map[string]float64 {
	return map[string]float64{"pos": float64(s.pos), "goal": float64(s.goal)}
}

func (s *stubEnv) Screen() *imaging.Image {
	s.screen.Set(s.pos%8, 0, 255)
	return s.screen
}

func (s *stubEnv) Score() float64   { return float64(s.pos) / float64(s.goal) }
func (s *stubEnv) Success() bool    { return s.pos >= s.goal }
func (s *stubEnv) Snapshot() any    { return s.pos }
func (s *stubEnv) Restore(snap any) { s.pos = snap.(int) }

func TestStateVector(t *testing.T) {
	e := newStub(5)
	e.pos = 3
	got := StateVector(e, []string{"goal", "pos", "missing"})
	if got[0] != 5 || got[1] != 3 || got[2] != 0 {
		t.Errorf("StateVector = %v", got)
	}
}

func TestSortedVarNames(t *testing.T) {
	got := SortedVarNames(newStub(5))
	if len(got) != 2 || got[0] != "goal" || got[1] != "pos" {
		t.Errorf("SortedVarNames = %v", got)
	}
}

func TestRunEpisodeReachesGoal(t *testing.T) {
	e := newStub(5)
	res := RunEpisode(e, func(Env) int { return 1 }, 100)
	if !res.Success || res.Score != 1 {
		t.Errorf("result = %+v", res)
	}
	if res.Steps != 5 {
		t.Errorf("Steps = %d, want 5", res.Steps)
	}
	// 4 alive rewards + terminal 10.
	if res.Reward != 14 {
		t.Errorf("Reward = %v, want 14", res.Reward)
	}
	if e.resets != 1 {
		t.Error("RunEpisode did not reset")
	}
}

func TestRunEpisodeRespectsMaxSteps(t *testing.T) {
	e := newStub(1000)
	res := RunEpisode(e, func(Env) int { return 1 }, 10)
	if res.Success || res.Steps != 10 {
		t.Errorf("result = %+v", res)
	}
}

func TestAverageScore(t *testing.T) {
	e := newStub(4)
	score, success := AverageScore(e, func(Env) int { return 1 }, 3, 100)
	if score != 1 || success != 1 {
		t.Errorf("avg = %v, %v", score, success)
	}
	score, success = AverageScore(e, func(Env) int { return 0 }, 3, 10)
	if score != 0 || success != 0 {
		t.Errorf("idle avg = %v, %v", score, success)
	}
}

func TestRawState(t *testing.T) {
	e := newStub(5)
	raw := RawState(e, 1)
	if len(raw) != 64 {
		t.Fatalf("raw length = %d", len(raw))
	}
	for _, v := range raw {
		if v < 0 || v > 1 {
			t.Fatal("raw pixel out of [0,1]")
		}
	}
	down := RawState(e, 2)
	if len(down) != 16 {
		t.Errorf("downsampled length = %d, want 16", len(down))
	}
}
