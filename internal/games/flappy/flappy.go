// Package flappy implements the Flappy-bird subject: a bird under
// gravity flaps through a course of pipe gaps. The paper's score for
// this game is "how far the bird flies in terms of the percentage of
// the whole distance".
//
// Internal state variables include the bird's kinematics and the next
// pipes' geometry — the high-level information a raw-pixel model would
// have to rediscover through convolution layers.
package flappy

import (
	"github.com/autonomizer/autonomizer/internal/dep"
	"github.com/autonomizer/autonomizer/internal/games/env"
	"github.com/autonomizer/autonomizer/internal/imaging"
	"github.com/autonomizer/autonomizer/internal/stats"
)

// Action space.
const (
	// ActNoop lets gravity act.
	ActNoop = 0
	// ActFlap applies upward impulse.
	ActFlap = 1
)

// World constants.
const (
	worldH     = 48.0
	courseLen  = 400.0
	pipeGap    = 14.0
	pipeEvery  = 40.0
	gravity    = 0.35
	flapImp    = -2.4
	forwardVel = 1.0
	birdX      = 10.0 // screen-relative bird column
)

// Game is one Flappy-bird instance.
type Game struct {
	rng *stats.RNG

	// state holds everything Snapshot copies.
	state gameState
	// pipes is the fixed course layout (gap centers by pipe index),
	// regenerated per Reset from the seeded RNG.
	pipes []float64
}

type gameState struct {
	X, Y, VY  float64
	Dead      bool
	Finished  bool
	Steps     int
	FlapCount int
}

// New creates a game with a deterministic course from seed. The course
// is fixed for the game's lifetime — like the paper's stages, every
// episode replays the same layout, which is also what au_checkpoint/
// au_restore training assumes.
func New(seed uint64) *Game {
	g := &Game{rng: stats.NewRNG(seed)}
	n := int(courseLen/pipeEvery) + 1
	g.pipes = make([]float64, n)
	for i := range g.pipes {
		g.pipes[i] = g.rng.Range(pipeGap, worldH-pipeGap)
	}
	g.Reset()
	return g
}

// Reset implements env.Env: the bird respawns, the course stays.
func (g *Game) Reset() {
	g.state = gameState{Y: worldH / 2}
}

// NumActions implements env.Env.
func (g *Game) NumActions() int { return 2 }

// Step implements env.Env.
func (g *Game) Step(action int) (float64, bool) {
	if g.state.Dead || g.state.Finished {
		return 0, true
	}
	g.state.Steps++
	if action == ActFlap {
		g.state.VY = flapImp
		g.state.FlapCount++
	}
	g.state.VY += gravity
	g.state.Y += g.state.VY
	g.state.X += forwardVel

	// Ceiling/ground kill.
	if g.state.Y < 0 || g.state.Y > worldH {
		g.state.Dead = true
		return -10, true
	}
	// Pipe collision: at pipe columns the bird must be inside the gap.
	pi := g.pipeIndex(g.state.X)
	if pi >= 0 {
		center := g.pipes[pi]
		if g.state.Y < center-pipeGap/2 || g.state.Y > center+pipeGap/2 {
			g.state.Dead = true
			return -10, true
		}
	}
	if g.state.X >= courseLen {
		g.state.Finished = true
		return 10, true
	}
	return 0.5, false
}

// pipeIndex returns the pipe whose 2-unit-wide column contains x, or -1.
func (g *Game) pipeIndex(x float64) int {
	i := int(x / pipeEvery)
	col := float64(i) * pipeEvery
	if i >= 1 && i-1 < len(g.pipes) && x >= col-1 && x <= col+1 {
		return i - 1
	}
	return -1
}

// nextPipe returns the index and distance of the first pipe column at or
// ahead of x.
func (g *Game) nextPipe() (idx int, dist float64) {
	i := int(g.state.X/pipeEvery) + 1
	if i-1 >= len(g.pipes) {
		return len(g.pipes) - 1, courseLen - g.state.X
	}
	return i - 1, float64(i)*pipeEvery - g.state.X
}

// StateVars implements env.Env. Besides the informative variables it
// exposes the same kinds of redundant (scaled duplicates) and constant
// variables a real program carries, giving Algorithm 2's pruning real
// work (Table 1 reports 19 candidates pruned to 4 for Flappybird).
func (g *Game) StateVars() map[string]float64 {
	pi, dist := g.nextPipe()
	gapY := g.pipes[pi]
	next2 := gapY
	if pi+1 < len(g.pipes) {
		next2 = g.pipes[pi+1]
	}
	return map[string]float64{
		"birdY":      g.state.Y,
		"birdVY":     g.state.VY,
		"pipeDist":   dist,
		"gapY":       gapY,
		"gapDelta":   gapY - g.state.Y,
		"nextGapY":   next2,
		"birdX":      g.state.X,
		"progress":   g.state.X / courseLen,
		"steps":      float64(g.state.Steps),
		"flapCount":  float64(g.state.FlapCount),
		"screenY":    g.state.Y * 2, // redundant: scaled birdY
		"pipeDistPx": dist * 2,      // redundant: scaled pipeDist
		"gravity":    gravity,       // constant
		"worldH":     worldH,        // constant
		"flapImp":    flapImp,       // constant
		"gapHalf":    pipeGap / 2,   // constant
		"deadFlag":   bool2f(g.state.Dead),
		"doneFlag":   bool2f(g.state.Finished),
		"velAbs":     abs(g.state.VY),
	}
}

func bool2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Screen implements env.Env: a 64×64 side view around the bird.
func (g *Game) Screen() *imaging.Image {
	img := imaging.NewImage(64, 64)
	scaleY := 64.0 / worldH
	// Pipes within the visible 64-unit window ahead of the bird.
	for i, center := range g.pipes {
		col := float64(i+1) * pipeEvery
		sx := int(col - g.state.X + birdX)
		if sx < 0 || sx >= 64 {
			continue
		}
		top := int((center - pipeGap/2) * scaleY)
		bot := int((center + pipeGap/2) * scaleY)
		for y := 0; y < 64; y++ {
			if y < top || y > bot {
				img.Set(sx, y, 180)
				img.Set(sx+1, y, 180)
			}
		}
	}
	// Bird.
	by := int(g.state.Y * scaleY)
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			img.Set(int(birdX)+dx, by+dy, 255)
		}
	}
	return img
}

// Score implements env.Env: distance fraction of the whole course.
func (g *Game) Score() float64 {
	s := g.state.X / courseLen
	if s > 1 {
		s = 1
	}
	return s
}

// Success implements env.Env.
func (g *Game) Success() bool { return g.state.Finished }

// Snapshot implements env.Env (σ for au_checkpoint). The course layout
// is part of the episode state.
func (g *Game) Snapshot() any {
	return snapshot{state: g.state, pipes: append([]float64(nil), g.pipes...)}
}

// Restore implements env.Env.
func (g *Game) Restore(s any) {
	snap := s.(snapshot)
	g.state = snap.state
	g.pipes = append([]float64(nil), snap.pipes...)
}

type snapshot struct {
	state gameState
	pipes []float64
}

// FeatureVarNames is the post-Algorithm-2 feature set (Table 1: 4
// feature variables for Flappybird).
func FeatureVarNames() []string {
	return []string{"birdY", "birdVY", "pipeDist", "gapDelta"}
}

// TargetVars returns the annotated target variables (Table 1: 2 — the
// action key and the flap impulse selector share the action output in
// our port, so we report the action plus the flap strength).
func TargetVars() []string { return []string{"actionKey", "flapKey"} }

// DepGraph returns the dynamic dependence graph of the game's update
// loop, for Table 1 and Algorithm 2.
func DepGraph() *dep.Graph {
	g := dep.NewGraph()
	g.Def("birdVY", "birdVY", "actionKey", "flapKey")
	g.Def("birdY", "birdY", "birdVY")
	g.Def("birdX", "birdX")
	g.Def("progress", "birdX")
	g.Def("pipeDist", "birdX", "pipeIdx")
	g.Def("pipeIdx", "birdX")
	g.Def("gapY", "pipeIdx")
	g.Def("nextGapY", "pipeIdx")
	g.Def("gapDelta", "gapY", "birdY")
	g.Def("screenY", "birdY")
	g.Def("pipeDistPx", "pipeDist")
	g.Def("velAbs", "birdVY")
	g.Def("collide", "birdY", "gapY", "pipeDist")
	g.Def("deadFlag", "collide")
	g.Def("doneFlag", "progress")
	g.Def("reward", "deadFlag", "doneFlag", "progress")
	g.Def("steps", "steps")
	g.Def("flapCount", "flapCount", "actionKey")
	for _, v := range []string{"birdY", "birdVY", "pipeDist", "gapY", "gapDelta", "nextGapY",
		"screenY", "pipeDistPx", "velAbs", "collide", "deadFlag", "doneFlag", "reward",
		"actionKey", "flapKey", "steps", "flapCount", "progress", "birdX", "pipeIdx",
		"gravity", "worldH", "flapImp", "gapHalf"} {
		g.Use("gameLoop", v)
	}
	// Rendering consumes the duplicates and constants.
	g.Def("screen", "screenY", "pipeDistPx", "gapY", "worldH", "gravity", "flapImp", "gapHalf")
	g.Use("gameLoop", "screen")
	return g
}

// ScriptedPlayer is the reference controller standing in for the
// paper's human players: flap when below the gap center and falling
// toward danger.
func ScriptedPlayer(e env.Env) int {
	vars := e.StateVars()
	if vars["birdY"] > vars["gapY"]+1 || (vars["birdVY"] > 2 && vars["birdY"] > vars["gapY"]-3) {
		return ActFlap
	}
	return ActNoop
}
