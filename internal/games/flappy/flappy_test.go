package flappy

import (
	"testing"

	"github.com/autonomizer/autonomizer/internal/games/env"
)

func TestInterfaceCompliance(t *testing.T) {
	var _ env.Env = New(1)
}

func TestResetState(t *testing.T) {
	g := New(1)
	g.Step(ActFlap)
	g.Step(ActNoop)
	g.Reset()
	if g.Score() != 0 || g.Success() {
		t.Error("reset did not clear progress")
	}
	if g.StateVars()["steps"] != 0 {
		t.Error("reset did not clear steps")
	}
}

func TestGravityPullsDown(t *testing.T) {
	g := New(2)
	y0 := g.StateVars()["birdY"]
	for i := 0; i < 5; i++ {
		g.Step(ActNoop)
	}
	if g.StateVars()["birdY"] <= y0 {
		t.Error("bird did not fall under gravity")
	}
}

func TestFlapPushesUp(t *testing.T) {
	g := New(3)
	g.Step(ActFlap)
	if g.StateVars()["birdVY"] >= 0 {
		t.Error("flap did not produce upward velocity")
	}
}

func TestNoopOnlyDies(t *testing.T) {
	g := New(4)
	terminal := false
	var reward float64
	for i := 0; i < 500 && !terminal; i++ {
		reward, terminal = g.Step(ActNoop)
	}
	if !terminal || reward != -10 {
		t.Errorf("noop-only play did not die: terminal=%v reward=%v", terminal, reward)
	}
	if g.Success() {
		t.Error("dead bird reported success")
	}
}

func TestScriptedPlayerOutperformsNoop(t *testing.T) {
	scripted, _ := env.AverageScore(New(5), ScriptedPlayer, 5, 2000)
	noop, _ := env.AverageScore(New(5), func(env.Env) int { return ActNoop }, 5, 2000)
	if scripted <= noop {
		t.Errorf("scripted %v not above noop %v", scripted, noop)
	}
	if scripted < 0.5 {
		t.Errorf("scripted player only reaches %v of the course", scripted)
	}
}

func TestTerminalAfterDeathStaysTerminal(t *testing.T) {
	g := New(6)
	for i := 0; i < 500; i++ {
		if _, term := g.Step(ActNoop); term {
			break
		}
	}
	if _, term := g.Step(ActFlap); !term {
		t.Error("stepping a dead game is not terminal")
	}
}

func TestStateVarsComplete(t *testing.T) {
	g := New(7)
	vars := g.StateVars()
	for _, want := range []string{"birdY", "birdVY", "pipeDist", "gapY", "gapDelta",
		"screenY", "gravity", "worldH"} {
		if _, ok := vars[want]; !ok {
			t.Errorf("StateVars missing %s", want)
		}
	}
	// Redundant duplicate must actually be a scaled copy.
	if vars["screenY"] != vars["birdY"]*2 {
		t.Error("screenY is not a scaled duplicate of birdY")
	}
}

func TestScreenRendering(t *testing.T) {
	g := New(8)
	img := g.Screen()
	if img.W != 64 || img.H != 64 {
		t.Fatalf("screen %dx%d", img.W, img.H)
	}
	lit := 0
	for _, v := range img.Pix {
		if v > 0 {
			lit++
		}
	}
	if lit < 10 {
		t.Errorf("screen nearly empty: %d lit pixels", lit)
	}
}

func TestSnapshotRestore(t *testing.T) {
	g := New(9)
	for i := 0; i < 10; i++ {
		g.Step(ActFlap)
	}
	snap := g.Snapshot()
	before := g.StateVars()["birdY"]
	for i := 0; i < 20; i++ {
		g.Step(ActNoop)
	}
	g.Restore(snap)
	if g.StateVars()["birdY"] != before {
		t.Error("restore did not roll back bird position")
	}
}

func TestDepGraphSupportsAlgorithm2Inputs(t *testing.T) {
	g := DepGraph()
	if !g.Has("birdY") || !g.Has("actionKey") {
		t.Fatal("dep graph missing key variables")
	}
	// The loop-carried variables depend on themselves.
	if !g.DependsOn("birdY", "birdY") {
		t.Error("birdY self-dependence missing")
	}
	// actionKey's dependents share the game loop with the features.
	if !g.SharesUseFunction("birdY", "actionKey") {
		t.Error("birdY does not share a use function with dep(actionKey)")
	}
}

func TestFeatureVarNamesExist(t *testing.T) {
	g := New(10)
	vars := g.StateVars()
	for _, n := range FeatureVarNames() {
		if _, ok := vars[n]; !ok {
			t.Errorf("feature var %s not in StateVars", n)
		}
	}
}

func TestScoreMonotoneWithProgress(t *testing.T) {
	g := New(11)
	prev := g.Score()
	for i := 0; i < 30; i++ {
		_, term := g.Step(ScriptedPlayer(g))
		if term {
			break
		}
		if s := g.Score(); s < prev {
			t.Fatal("score decreased while alive")
		} else {
			prev = s
		}
	}
}

func TestNumActionsAndTargets(t *testing.T) {
	if New(30).NumActions() != 2 {
		t.Error("NumActions wrong")
	}
	if len(TargetVars()) != 2 {
		t.Errorf("TargetVars = %v", TargetVars())
	}
}

func TestFinishCourse(t *testing.T) {
	g := New(31)
	// Drive to the end with the scripted player; if it dies, teleport
	// near the finish and confirm the terminal reward/flags.
	g.state.X = courseLen - 2
	// The final pipe column sits exactly at the finish line; fly at its
	// gap height.
	g.state.Y = g.pipes[int(courseLen/pipeEvery)-1]
	g.state.VY = 0
	var reward float64
	terminal := false
	for i := 0; i < 10 && !terminal; i++ {
		reward, terminal = g.Step(ScriptedPlayer(g))
	}
	if !terminal || reward != 10 || !g.Success() || g.Score() != 1 {
		t.Errorf("finish: reward=%v terminal=%v success=%v score=%v",
			reward, terminal, g.Success(), g.Score())
	}
}
