package extract

import (
	"math"
	"reflect"
	"testing"

	"github.com/autonomizer/autonomizer/internal/dep"
	"github.com/autonomizer/autonomizer/internal/trace"
)

// cannyGraph mirrors Fig. 9: image → sImg → mag → hist → result, with
// targets lo/hi/sigma feeding result and sImg respectively.
func cannyGraph() *dep.Graph {
	g := dep.NewGraph()
	g.MarkInput("image")
	g.Def("sImg", "image", "sigma")
	g.Def("mag", "sImg")
	g.Def("hist", "mag")
	g.Def("result", "hist", "lo", "hi")
	return g
}

func TestSLRankingMatchesFig9(t *testing.T) {
	g := cannyGraph()
	res := SL(g, []string{"image"}, []string{"lo"})
	feats := res["lo"]
	if len(feats) != 4 {
		t.Fatalf("features for lo = %v, want 4 (hist,mag,sImg,image)", feats)
	}
	wantOrder := []string{"hist", "mag", "sImg", "image"}
	wantDist := []int{1, 2, 3, 4}
	for i, f := range feats {
		if f.Name != wantOrder[i] || f.Dist != wantDist[i] {
			t.Errorf("rank %d = %+v, want {%s %d}", i, f, wantOrder[i], wantDist[i])
		}
	}
}

func TestSLExcludesDownstreamOfTarget(t *testing.T) {
	g := cannyGraph()
	// result depends on lo, so result must not be a feature for lo even
	// though it is a candidate (dependent of image).
	res := SL(g, []string{"image"}, []string{"lo"})
	for _, f := range res["lo"] {
		if f.Name == "result" {
			t.Error("feature set includes a variable that depends on the target")
		}
	}
}

func TestSLExcludesTargetItself(t *testing.T) {
	g := cannyGraph()
	// sigma feeds sImg, making sigma a candidate? No: candidates are
	// inputs ∪ dep(inputs); sigma is not derived from image. But a
	// target that IS a candidate must still be excluded from its own
	// feature list.
	g.Def("sigma", "image") // now sigma ∈ dep(image)
	res := SL(g, []string{"image"}, []string{"sigma"})
	for _, f := range res["sigma"] {
		if f.Name == "sigma" {
			t.Error("target listed as its own feature")
		}
	}
}

func TestSLUncorrelatedCandidatesDropped(t *testing.T) {
	g := cannyGraph()
	g.MarkInput("audio")
	g.Def("noise", "audio") // disconnected from lo's descendants
	res := SL(g, []string{"image", "audio"}, []string{"lo"})
	for _, f := range res["lo"] {
		if f.Name == "noise" || f.Name == "audio" {
			t.Errorf("uncorrelated candidate %s selected", f.Name)
		}
	}
}

func TestCandidateCount(t *testing.T) {
	g := cannyGraph()
	// image + {sImg, mag, hist, result} = 5.
	if got := CandidateCount(g, []string{"image"}); got != 5 {
		t.Errorf("CandidateCount = %d, want 5", got)
	}
}

func TestSelect(t *testing.T) {
	feats := []RankedFeature{{"hist", 1}, {"mag", 2}, {"sImg", 3}, {"image", 4}}
	if f, ok := Select(feats, Min); !ok || f.Name != "hist" {
		t.Errorf("Min = %+v", f)
	}
	if f, ok := Select(feats, Med); !ok || f.Name != "sImg" {
		t.Errorf("Med = %+v", f)
	}
	if f, ok := Select(feats, Raw); !ok || f.Name != "image" {
		t.Errorf("Raw = %+v", f)
	}
	if _, ok := Select(nil, Min); ok {
		t.Error("Select on empty list reported ok")
	}
}

// marioSetup builds the Fig. 10 structure: Player->X depends on itself
// and feeds speed; Minion->X feeds collide; both reach the target right.
// mX duplicates Minion->X; accG is unchanging.
func marioSetup() (*dep.Graph, *trace.Recorder) {
	g := dep.NewGraph()
	g.Def("Player->X", "Player->X") // loop-carried
	g.Def("speed", "Player->X")
	g.Def("right", "speed")
	g.Def("pX", "right") // right's dependent
	g.Def("collide", "Minion->X", "pX")
	g.Def("mX", "Minion->X")
	g.Def("collide", "mX")
	g.Def("collide", "accG")
	// Use functions: everything relevant appears in the game loop.
	for _, v := range []string{"Player->X", "speed", "Minion->X", "mX", "pX", "collide", "accG"} {
		g.Use("gameLoop", v)
	}

	rec := trace.NewRecorder()
	for i := 0; i < 30; i++ {
		x := float64(i)
		rec.Record("Player->X", x*1.5)
		rec.Record("speed", math.Sin(x/5))
		rec.Record("Minion->X", 100-x)
		rec.Record("mX", (100-x)*3+7) // affine duplicate of Minion->X
		rec.Record("pX", x*1.5)
		rec.Record("collide", math.Mod(x, 2))
		rec.Record("accG", 9.8) // unchanging
	}
	return g, rec
}

func TestRLMatchesPaperExample(t *testing.T) {
	g, rec := marioSetup()
	progVars := []string{"Player->X", "speed", "Minion->X", "mX", "pX", "collide", "accG"}
	report := RL(g, rec, []string{"right"}, progVars, RLConfig{Epsilon1: 1e-6, Epsilon2: 0.01})

	feats := report.Features["right"]
	has := func(name string) bool {
		for _, f := range feats {
			if f == name {
				return true
			}
		}
		return false
	}
	if !has("Player->X") {
		t.Errorf("Player->X missing from features: %v", feats)
	}
	if !has("Minion->X") {
		t.Errorf("Minion->X missing from features: %v", feats)
	}
	// mX is an affine duplicate of Minion->X: pruned by ε₁.
	if has("mX") {
		t.Errorf("duplicate mX not pruned: %v", feats)
	}
	foundPair := false
	for _, p := range report.PrunedRedundant {
		if (p[0] == "Minion->X" && p[1] == "mX") || (p[0] == "mX" && p[1] == "Minion->X") {
			foundPair = true
		}
	}
	if !foundPair {
		t.Errorf("redundant pair not reported: %v", report.PrunedRedundant)
	}
	// accG never changes: pruned by ε₂ (the Fig. 16 accX case).
	if has("accG") {
		t.Errorf("unchanging accG not pruned: %v", feats)
	}
	pruned := false
	for _, n := range report.PrunedUnchanging {
		if n == "accG" {
			pruned = true
		}
	}
	if !pruned {
		t.Errorf("accG not reported as unchanging: %v", report.PrunedUnchanging)
	}
	if report.Candidates["right"] == 0 {
		t.Error("candidate count not recorded")
	}
}

func TestRLTargetNeverItsOwnFeature(t *testing.T) {
	g, rec := marioSetup()
	rec.Record("right", 1)
	report := RL(g, rec, []string{"right"}, []string{"right", "speed"}, RLConfig{})
	for _, f := range report.Features["right"] {
		if f == "right" {
			t.Error("target selected as its own feature")
		}
	}
}

func TestRLNoSharedFunctionNoCandidate(t *testing.T) {
	g := dep.NewGraph()
	g.Def("out", "target")
	g.Def("out", "lonely")
	g.Use("elsewhere", "lonely") // uses a function no dependent of target uses
	rec := trace.NewRecorder()
	for i := 0; i < 5; i++ {
		rec.Record("lonely", float64(i))
	}
	report := RL(g, rec, []string{"target"}, []string{"lonely"}, RLConfig{})
	if len(report.Features["target"]) != 0 {
		t.Errorf("feature without shared use function selected: %v", report.Features)
	}
}

func TestCombinedFeatures(t *testing.T) {
	r := RLReport{Features: map[string][]string{
		"a": {"x", "y"},
		"b": {"y", "z"},
	}}
	got := r.CombinedFeatures()
	if !reflect.DeepEqual(got, []string{"x", "y", "z"}) {
		t.Errorf("CombinedFeatures = %v", got)
	}
}

// TestEpsilonMonotonicity property: growing ε₁ or ε₂ can only shrink the
// surviving feature set.
func TestEpsilonMonotonicity(t *testing.T) {
	g, rec := marioSetup()
	progVars := []string{"Player->X", "speed", "Minion->X", "mX", "pX", "collide", "accG"}
	prev := -1
	for _, eps := range []float64{0, 0.001, 0.01, 0.1, 1, 10} {
		rep := RL(g, rec, []string{"right"}, progVars, RLConfig{Epsilon1: eps, Epsilon2: eps})
		n := len(rep.Features["right"])
		if prev >= 0 && n > prev {
			t.Errorf("feature count grew from %d to %d as epsilon rose to %v", prev, n, eps)
		}
		prev = n
	}
}
