// Package extract implements the paper's two automatic feature-variable
// extraction algorithms (Section 4):
//
//   - Algorithm 1 (supervised learning): candidate features are the
//     program inputs and their transitive dependents; a candidate is
//     correlated with a target iff they share a common dependent; ranked
//     features are sorted by dependence-graph distance to the first
//     common descendant (shorter ⇒ more abstract ⇒ better).
//
//   - Algorithm 2 (reinforcement learning): candidates are program
//     variables used in the same functions as the target's dependents
//     and sharing a common descendant with the target; candidates with
//     near-duplicate value traces (scaled Euclidean distance ≤ ε₁) or
//     unchanging traces (variance ≤ ε₂) are pruned.
package extract

import (
	"sort"

	"github.com/autonomizer/autonomizer/internal/dep"
	"github.com/autonomizer/autonomizer/internal/stats"
	"github.com/autonomizer/autonomizer/internal/trace"
)

// RankedFeature is one feature variable with its dependence distance to
// the target's first common descendant.
type RankedFeature struct {
	Name string
	Dist int
}

// SLResult maps each target variable to its ranked feature variables,
// nearest first.
type SLResult map[string][]RankedFeature

// SL runs Algorithm 1. in is the program-input variable set (In), trg
// the target variables (Trg), g the pre-computed dynamic dependence
// graph (GDep). The returned features for each target are sorted by
// ascending distance, with name order breaking ties deterministically.
func SL(g *dep.Graph, in, trg []string) SLResult {
	// Candidate ← In ∪ dep(In)   (line 1)
	candidateSet := make(map[string]bool)
	for _, iv := range in {
		candidateSet[iv] = true
		for w := range g.Dependents(iv) {
			candidateSet[w] = true
		}
	}
	candidates := make([]string, 0, len(candidateSet))
	for w := range candidateSet {
		candidates = append(candidates, w)
	}
	sort.Strings(candidates)

	result := make(SLResult, len(trg))
	for _, v := range trg {
		var feats []RankedFeature
		for _, w := range candidates {
			if w == v {
				continue
			}
			// For prediction purposes, w must not depend on v: a
			// feature downstream of the parameter would leak it.
			if g.DependsOn(w, v) {
				continue
			}
			// Correlation test: dep(w) ∩ dep(v) ≠ ∅   (line 5)
			dist, ok := g.Distance(w, v)
			if !ok {
				continue
			}
			feats = append(feats, RankedFeature{Name: w, Dist: dist})
		}
		// Sort by distance (line 10), names break ties.
		sort.Slice(feats, func(i, j int) bool {
			if feats[i].Dist != feats[j].Dist {
				return feats[i].Dist < feats[j].Dist
			}
			return feats[i].Name < feats[j].Name
		})
		result[v] = feats
	}
	return result
}

// CandidateCount reports |In ∪ dep(In)|, the Table 1 "Candidate Vars"
// statistic for SL subjects.
func CandidateCount(g *dep.Graph, in []string) int {
	set := make(map[string]bool)
	for _, iv := range in {
		set[iv] = true
		for w := range g.Dependents(iv) {
			set[w] = true
		}
	}
	return len(set)
}

// Pick selects feature names from a ranked list by distance band, the
// paper's Raw / Med / Min comparison axes.
type Pick int

const (
	// Min selects the minimum-distance feature.
	Min Pick = iota
	// Med selects the median-distance feature.
	Med
	// Raw selects the maximum-distance feature (the raw input end).
	Raw
)

// Select returns the feature at the requested distance band, or false
// for an empty list.
func Select(feats []RankedFeature, p Pick) (RankedFeature, bool) {
	if len(feats) == 0 {
		return RankedFeature{}, false
	}
	switch p {
	case Min:
		return feats[0], true
	case Med:
		return feats[len(feats)/2], true
	default:
		return feats[len(feats)-1], true
	}
}

// RLConfig parameterizes Algorithm 2.
type RLConfig struct {
	// Epsilon1 prunes a candidate whose scaled trace lies within this
	// Euclidean distance of an already-kept candidate (redundancy).
	Epsilon1 float64
	// Epsilon2 prunes candidates whose raw trace variance is at most
	// this threshold (unchanging variables).
	Epsilon2 float64
}

// RLReport captures what Algorithm 2 decided, for Table 1 statistics
// and the Fig. 15/16 pruning illustrations.
type RLReport struct {
	// Features maps each target variable to its surviving features.
	Features map[string][]string
	// Candidates maps each target to its pre-pruning candidate count.
	Candidates map[string]int
	// PrunedRedundant lists (kept, pruned) pairs removed by ε₁.
	PrunedRedundant [][2]string
	// PrunedUnchanging lists variables removed by ε₂.
	PrunedUnchanging []string
}

// CombinedFeatures returns the union of features across all targets in
// sorted order — the paper combines all feature variables to predict all
// targets "due to the large overlap of the feature variable sets".
func (r RLReport) CombinedFeatures() []string {
	set := make(map[string]bool)
	for _, fs := range r.Features {
		for _, f := range fs {
			set[f] = true
		}
	}
	out := make([]string, 0, len(set))
	for f := range set {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// RL runs Algorithm 2. trg is the target variable set, progVars the
// candidate program variables (ProgVar), g the dependence graph carrying
// use-function information, rec the profiled value traces.
func RL(g *dep.Graph, rec *trace.Recorder, trg, progVars []string, cfg RLConfig) RLReport {
	report := RLReport{
		Features:   make(map[string][]string, len(trg)),
		Candidates: make(map[string]int, len(trg)),
	}
	sorted := append([]string(nil), progVars...)
	sort.Strings(sorted)

	for _, v := range trg {
		// Lines 3-5: candidate selection.
		type cand struct {
			name   string
			scaled []float64
		}
		var candidates []cand
		for _, w := range sorted {
			if w == v {
				continue
			}
			// UseFunc[dep(v)] ∩ UseFunc[w] ≠ ∅
			if !g.SharesUseFunction(w, v) {
				continue
			}
			// dep(v) ∩ dep(w) ≠ ∅
			if len(g.CommonDescendants(v, w)) == 0 {
				continue
			}
			candidates = append(candidates, cand{name: w, scaled: rec.ScaledTrace(w)})
		}
		report.Candidates[v] = len(candidates)

		// Lines 6-12: pruning.
		var kept []cand
		for _, c := range candidates {
			// ε₂: unchanging variables are not good features (Fig. 16's
			// accX example).
			if rec.Variance(c.name) <= cfg.Epsilon2 {
				report.PrunedUnchanging = append(report.PrunedUnchanging, c.name)
				continue
			}
			// ε₁: near-duplicates of an already-kept feature are
			// redundant (Fig. 15's posX ≈ roll example).
			redundant := false
			for _, k := range kept {
				if stats.EuclideanDistance(k.scaled, c.scaled) <= cfg.Epsilon1 {
					report.PrunedRedundant = append(report.PrunedRedundant, [2]string{k.name, c.name})
					redundant = true
					break
				}
			}
			if redundant {
				continue
			}
			kept = append(kept, c)
		}
		names := make([]string, len(kept))
		for i, k := range kept {
			names[i] = k.name
		}
		report.Features[v] = names
	}
	return report
}
