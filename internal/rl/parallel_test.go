package rl

import (
	"bytes"
	"testing"

	"github.com/autonomizer/autonomizer/internal/nn"
	"github.com/autonomizer/autonomizer/internal/parallel"
	"github.com/autonomizer/autonomizer/internal/stats"
)

// runAgent feeds a deterministic stream of transitions through a fresh
// agent and returns the online network's final weights.
func runAgent(t *testing.T, steps int) []byte {
	t.Helper()
	rng := stats.NewRNG(11)
	online := nn.NewDNN(4, []int{16}, 3, rng.Split())
	target := nn.NewDNN(4, []int{16}, 3, rng.Split())
	a := NewAgent(online, target, 3, Config{
		BatchSize: 8, WarmupSteps: 8, EpsilonDecaySteps: steps, TargetSyncEvery: 10,
	}, stats.NewRNG(13))
	env := stats.NewRNG(17)
	state := []float64{0.1, 0.2, 0.3, 0.4}
	for i := 0; i < steps; i++ {
		next := []float64{env.Float64(), env.Float64(), env.Float64(), env.Float64()}
		a.Observe(Transition{
			State: state, Action: a.Act(state, false),
			Reward: env.Range(-1, 1), NextState: next,
			Terminal: i%25 == 24,
		})
		state = next
	}
	params, err := a.online.MarshalParams()
	if err != nil {
		t.Fatal(err)
	}
	return params
}

// TestObserveParallelDeterminism checks the replayed Q-learning update is
// bit-identical across worker counts, including the sequential path.
func TestObserveParallelDeterminism(t *testing.T) {
	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)
	want := runAgent(t, 120)
	for _, w := range []int{2, 8} {
		parallel.SetWorkers(w)
		if got := runAgent(t, 120); !bytes.Equal(want, got) {
			t.Errorf("workers=%d: DQN update diverged from sequential", w)
		}
	}
}
