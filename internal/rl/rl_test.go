package rl

import (
	"testing"
	"testing/quick"

	"github.com/autonomizer/autonomizer/internal/nn"
	"github.com/autonomizer/autonomizer/internal/stats"
)

func TestReplayBufferBasics(t *testing.T) {
	b := NewReplayBuffer(3, stats.NewRNG(1))
	if b.Cap() != 3 || b.Len() != 0 {
		t.Fatalf("fresh buffer len/cap = %d/%d", b.Len(), b.Cap())
	}
	for i := 0; i < 5; i++ {
		b.Add(Transition{State: []float64{float64(i)}, Action: i})
	}
	if b.Len() != 3 {
		t.Fatalf("Len after overflow = %d, want 3", b.Len())
	}
	// Oldest entries (0, 1) must have been evicted.
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		for _, tr := range b.Sample(1) {
			seen[tr.Action] = true
		}
	}
	if seen[0] || seen[1] {
		t.Errorf("evicted transitions still sampled: %v", seen)
	}
	if !seen[2] || !seen[3] || !seen[4] {
		t.Errorf("recent transitions missing from samples: %v", seen)
	}
}

func TestReplayBufferPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero capacity did not panic")
		}
	}()
	NewReplayBuffer(0, stats.NewRNG(1))
}

func TestReplaySampleEmptyPanics(t *testing.T) {
	b := NewReplayBuffer(2, stats.NewRNG(1))
	defer func() {
		if recover() == nil {
			t.Error("sampling empty buffer did not panic")
		}
	}()
	b.Sample(1)
}

func TestReplayBufferNeverExceedsCap(t *testing.T) {
	prop := func(n uint8) bool {
		b := NewReplayBuffer(7, stats.NewRNG(uint64(n)+1))
		for i := 0; i < int(n); i++ {
			b.Add(Transition{})
		}
		return b.Len() <= 7
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTraceBytes(t *testing.T) {
	b := NewReplayBuffer(10, stats.NewRNG(1))
	b.Add(Transition{State: make([]float64, 4), NextState: make([]float64, 4)})
	if got := b.TraceBytes(); got != 8*8+24 {
		t.Errorf("TraceBytes = %d, want %d", got, 8*8+24)
	}
	// Raw-pixel states must dominate internal-state traces, the Table 2
	// relationship.
	raw := NewReplayBuffer(10, stats.NewRNG(1))
	raw.Add(Transition{State: make([]float64, 84*84), NextState: make([]float64, 84*84)})
	if raw.TraceBytes() <= b.TraceBytes() {
		t.Error("raw trace not larger than internal-state trace")
	}
}

func TestEpsilonSchedule(t *testing.T) {
	rng := stats.NewRNG(2)
	online := nn.NewDNN(2, []int{4}, 2, rng)
	targetNet := nn.NewDNN(2, []int{4}, 2, rng)
	a := NewAgent(online, targetNet, 2, Config{EpsilonDecaySteps: 10, WarmupSteps: 1000}, rng)
	if e := a.Epsilon(); e != 1.0 {
		t.Errorf("initial epsilon = %v, want 1.0", e)
	}
	for i := 0; i < 20; i++ {
		a.Observe(Transition{State: []float64{0, 0}, NextState: []float64{0, 0}})
	}
	if e := a.Epsilon(); e < 0.05-1e-9 || e > 0.05+1e-9 {
		t.Errorf("final epsilon = %v, want 0.05", e)
	}
	if a.Steps() != 20 {
		t.Errorf("Steps = %d, want 20", a.Steps())
	}
}

func TestGreedyActIsArgmax(t *testing.T) {
	rng := stats.NewRNG(3)
	online := nn.NewDNN(2, nil, 3, rng)
	targetNet := nn.NewDNN(2, nil, 3, rng)
	a := NewAgent(online, targetNet, 3, Config{}, rng)
	s := []float64{1, -1}
	q := a.QValues(s)
	want := stats.ArgMax(q)
	for i := 0; i < 10; i++ {
		if got := a.Act(s, true); got != want {
			t.Fatalf("greedy Act = %d, want argmax %d", got, want)
		}
	}
}

func TestTargetNetworkSyncedAtConstruction(t *testing.T) {
	rng := stats.NewRNG(4)
	online := nn.NewDNN(2, []int{4}, 2, stats.NewRNG(5))
	targetNet := nn.NewDNN(2, []int{4}, 2, stats.NewRNG(6)) // different init
	a := NewAgent(online, targetNet, 2, Config{}, rng)
	s := []float64{0.5, -0.5}
	qo := a.online.Predict(s)
	qt := a.target.Predict(s)
	for i := range qo {
		if qo[i] != qt[i] {
			t.Fatal("target network not synced with online at construction")
		}
	}
}

// TestAgentSolvesChainMDP trains the agent on a tiny deterministic chain
// MDP where moving right always pays off; the learned greedy policy must
// prefer "right" in every state. This is the end-to-end check that the
// replay + target-network + Adam pipeline actually learns.
func TestAgentSolvesChainMDP(t *testing.T) {
	const chainLen = 5
	rng := stats.NewRNG(7)
	encode := func(pos int) []float64 {
		s := make([]float64, chainLen)
		s[pos] = 1
		return s
	}
	online := nn.NewDNN(chainLen, []int{16}, 2, rng.Split())
	targetNet := nn.NewDNN(chainLen, []int{16}, 2, rng.Split())
	a := NewAgent(online, targetNet, 2, Config{
		EpsilonDecaySteps: 1500,
		WarmupSteps:       64,
		BatchSize:         16,
		TargetSyncEvery:   50,
		LR:                5e-3,
	}, rng.Split())

	pos := 0
	for step := 0; step < 4000; step++ {
		s := encode(pos)
		act := a.Act(s, false)
		next := pos
		reward := -0.1
		terminal := false
		if act == 1 { // right
			next = pos + 1
			if next == chainLen-1 {
				reward = 10
				terminal = true
			}
		} else if pos > 0 { // left
			next = pos - 1
		}
		a.Observe(Transition{State: s, Action: act, Reward: reward, NextState: encode(next), Terminal: terminal})
		if terminal {
			pos = 0
		} else {
			pos = next
		}
	}
	for p := 0; p < chainLen-1; p++ {
		if got := a.Act(encode(p), true); got != 1 {
			t.Errorf("greedy policy at pos %d = %d, want 1 (right)", p, got)
		}
	}
}

func TestObserveReturnsZeroDuringWarmup(t *testing.T) {
	rng := stats.NewRNG(8)
	online := nn.NewDNN(1, nil, 2, rng)
	targetNet := nn.NewDNN(1, nil, 2, rng)
	a := NewAgent(online, targetNet, 2, Config{WarmupSteps: 50}, rng)
	for i := 0; i < 49; i++ {
		if loss := a.Observe(Transition{State: []float64{0}, NextState: []float64{0}}); loss != 0 {
			t.Fatalf("training ran during warmup at step %d", i)
		}
	}
}

func TestNewAgentPanicsOnBadActions(t *testing.T) {
	rng := stats.NewRNG(9)
	defer func() {
		if recover() == nil {
			t.Error("zero actions did not panic")
		}
	}()
	n := nn.NewDNN(1, nil, 1, rng)
	NewAgent(n, nn.NewDNN(1, nil, 1, rng), 0, Config{}, rng)
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	c.fillDefaults()
	if c.Gamma != 0.97 || c.BatchSize != 32 || c.ReplayCapacity != 10000 ||
		c.TargetSyncEvery != 250 || c.LearnEvery != 1 || c.WarmupSteps != 100 ||
		c.LR != 1e-3 || c.EpsilonStart != 1.0 || c.EpsilonEnd != 0.05 {
		t.Errorf("defaults wrong: %+v", c)
	}
}

// TestDoubleDQNSolvesChain repeats the chain-MDP check with double
// Q-learning enabled: the decoupled action selection must not break
// convergence.
func TestDoubleDQNSolvesChain(t *testing.T) {
	const chainLen = 5
	rng := stats.NewRNG(70)
	encode := func(pos int) []float64 {
		s := make([]float64, chainLen)
		s[pos] = 1
		return s
	}
	online := nn.NewDNN(chainLen, []int{16}, 2, rng.Split())
	targetNet := nn.NewDNN(chainLen, []int{16}, 2, rng.Split())
	a := NewAgent(online, targetNet, 2, Config{
		EpsilonDecaySteps: 1500,
		WarmupSteps:       64,
		BatchSize:         16,
		TargetSyncEvery:   50,
		LR:                5e-3,
		DoubleDQN:         true,
	}, rng.Split())

	pos := 0
	for step := 0; step < 4000; step++ {
		s := encode(pos)
		act := a.Act(s, false)
		next := pos
		reward := -0.1
		terminal := false
		if act == 1 {
			next = pos + 1
			if next == chainLen-1 {
				reward = 10
				terminal = true
			}
		} else if pos > 0 {
			next = pos - 1
		}
		a.Observe(Transition{State: s, Action: act, Reward: reward, NextState: encode(next), Terminal: terminal})
		if terminal {
			pos = 0
		} else {
			pos = next
		}
	}
	for p := 0; p < chainLen-1; p++ {
		if got := a.Act(encode(p), true); got != 1 {
			t.Errorf("double-DQN greedy policy at pos %d = %d, want 1", p, got)
		}
	}
}
