package rl

import (
	"context"

	"github.com/autonomizer/autonomizer/internal/auerr"
	"github.com/autonomizer/autonomizer/internal/nn"
	"github.com/autonomizer/autonomizer/internal/obs"
	"github.com/autonomizer/autonomizer/internal/parallel"
	"github.com/autonomizer/autonomizer/internal/stats"
	"github.com/autonomizer/autonomizer/internal/tensor"
)

// Config holds the DQN hyperparameters. Zero values select the defaults
// listed on each field.
type Config struct {
	// Gamma is the discount factor (default 0.97).
	Gamma float64
	// EpsilonStart/EpsilonEnd bound the ε-greedy exploration schedule
	// (defaults 1.0 → 0.05).
	EpsilonStart, EpsilonEnd float64
	// EpsilonDecaySteps is how many Observe calls it takes for ε to
	// anneal from start to end (default 5000).
	EpsilonDecaySteps int
	// BatchSize is the replay mini-batch (default 32).
	BatchSize int
	// ReplayCapacity bounds the experience buffer (default 10000).
	ReplayCapacity int
	// TargetSyncEvery is the target-network refresh interval in training
	// steps (default 250).
	TargetSyncEvery int
	// LearnEvery trains once per this many Observe calls (default 1).
	LearnEvery int
	// WarmupSteps delays training until the buffer has this many
	// transitions (default max(BatchSize, 100)).
	WarmupSteps int
	// LR is the Adam learning rate (default 1e-3).
	LR float64
	// StateShape, when set, reshapes flat state vectors before the
	// forward pass (needed for CNN models over (C,H,W) screens).
	StateShape []int
	// DoubleDQN selects van Hasselt-style double Q-learning: the online
	// network chooses the bootstrap action and the target network
	// evaluates it, reducing the max-operator's overestimation bias.
	DoubleDQN bool
}

func (c *Config) fillDefaults() {
	if c.Gamma == 0 {
		c.Gamma = 0.97
	}
	if c.EpsilonStart == 0 {
		c.EpsilonStart = 1.0
	}
	if c.EpsilonEnd == 0 {
		c.EpsilonEnd = 0.05
	}
	if c.EpsilonDecaySteps == 0 {
		c.EpsilonDecaySteps = 5000
	}
	if c.BatchSize == 0 {
		c.BatchSize = 32
	}
	if c.ReplayCapacity == 0 {
		c.ReplayCapacity = 10000
	}
	if c.TargetSyncEvery == 0 {
		c.TargetSyncEvery = 250
	}
	if c.LearnEvery == 0 {
		c.LearnEvery = 1
	}
	if c.WarmupSteps == 0 {
		c.WarmupSteps = c.BatchSize
		if c.WarmupSteps < 100 {
			c.WarmupSteps = 100
		}
	}
	if c.LR == 0 {
		c.LR = 1e-3
	}
}

// Agent is a deep Q-learning agent: an online network selects actions,
// a periodically synced target network supplies bootstrap values, and
// experience replay decorrelates updates. It implements the paper's "Q"
// training algorithm invoked by au_NN in TR mode.
type Agent struct {
	cfg     Config
	online  *nn.Network
	target  *nn.Network
	buffer  *ReplayBuffer
	rng     *stats.RNG
	actions int
	steps   int
	trained int
	// opt is created lazily so an agent constructed for TS (production)
	// mode never allocates optimizer state.
	opt nn.Optimizer

	// Data-parallel scratch for the replay update, reused across Observe
	// calls: per-worker replicas of both networks plus per-transition
	// gradient/loss buffers (reduced in transition order, so updates are
	// bit-identical to the sequential loop at any worker count).
	onlineReps, targetReps []*nn.Network
	itemGrads              [][]*tensor.Tensor
	itemLoss               []float64

	// stateView is the recycled tensor header stateTensor wraps around
	// the caller's state slice on the sequential API paths (Act, QValues,
	// the sequential replay loop), so the Act hot path allocates nothing.
	// workerViews are the per-worker equivalents for the parallel replay
	// update, aligned with onlineReps.
	stateView   *tensor.Tensor
	workerViews []*tensor.Tensor

	// Telemetry instruments, resolved at construction (nil while
	// telemetry is disabled; every use is a nil-checked no-op).
	obsSteps *obs.Counter
	obsLoss  *obs.Gauge
	obsEps   *obs.Gauge
}

// NewAgent wraps online (and a structurally identical targetNet, which
// will be overwritten with online's weights) into a DQN agent with
// `actions` discrete outputs.
func NewAgent(online, targetNet *nn.Network, actions int, cfg Config, rng *stats.RNG) *Agent {
	if actions <= 0 {
		auerr.Failf("rl: agent needs a positive action count, got %d", actions)
	}
	cfg.fillDefaults()
	targetNet.CopyParamsFrom(online)
	reg := obs.Default()
	return &Agent{
		cfg:     cfg,
		online:  online,
		target:  targetNet,
		buffer:  NewReplayBuffer(cfg.ReplayCapacity, rng.Split()),
		rng:     rng,
		actions: actions,
		obsSteps: reg.Counter("autonomizer_rl_train_steps_total",
			"Replayed Q-learning updates applied across all agents.", nil),
		obsLoss: reg.Gauge("autonomizer_rl_last_loss",
			"Mean TD loss of the most recent replay minibatch.", nil),
		obsEps: reg.Gauge("autonomizer_rl_epsilon",
			"Current epsilon-greedy exploration rate.", nil),
	}
}

// Online exposes the online network (e.g. for serialization/size
// accounting in Table 2).
func (a *Agent) Online() *nn.Network { return a.online }

// Buffer exposes the replay buffer (for trace-size accounting).
func (a *Agent) Buffer() *ReplayBuffer { return a.buffer }

// Epsilon reports the current exploration rate.
func (a *Agent) Epsilon() float64 {
	frac := float64(a.steps) / float64(a.cfg.EpsilonDecaySteps)
	if frac > 1 {
		frac = 1
	}
	return a.cfg.EpsilonStart + (a.cfg.EpsilonEnd-a.cfg.EpsilonStart)*frac
}

// Steps reports how many transitions the agent has observed.
func (a *Agent) Steps() int { return a.steps }

// stateTensor wraps a caller's state slice in the given recycled tensor
// header (allocated on first use, nothing thereafter) and returns it.
// Concurrent callers must pass distinct views: the sequential agent API
// uses a.stateView, each replay worker its own workerViews slot.
func (a *Agent) stateTensor(view *tensor.Tensor, s []float64) *tensor.Tensor {
	if len(a.cfg.StateShape) > 0 {
		return tensor.ViewOf(view, s, a.cfg.StateShape...)
	}
	return tensor.ViewOf(view, s, len(s))
}

// seqView returns the sequential-path view header, allocating it once.
func (a *Agent) seqView() *tensor.Tensor {
	if a.stateView == nil {
		a.stateView = &tensor.Tensor{}
	}
	return a.stateView
}

// QValues returns the online network's action values for state.
func (a *Agent) QValues(state []float64) []float64 {
	a.stateView = a.stateTensor(a.stateView, state)
	out := a.online.Forward(a.stateView)
	return append([]float64(nil), out.Data()...)
}

// Act selects an action ε-greedily in training, or greedily when greedy
// is true (the paper's TS/production mode). The greedy path reads the
// argmax straight off the network's cached forward buffer — no QValues
// copy, so steady-state action selection allocates nothing.
func (a *Agent) Act(state []float64, greedy bool) int {
	if !greedy && a.rng.Float64() < a.Epsilon() {
		return a.rng.Intn(a.actions)
	}
	a.stateView = a.stateTensor(a.stateView, state)
	return stats.ArgMax(a.online.Forward(a.stateView).Data())
}

// ObserveCtx is the context-aware Observe. Cancellation is checked at
// the minibatch boundary — once before the transition is recorded and
// the replay update starts — because a replay minibatch is the atomic
// unit of DQN training. A canceled context returns an error wrapping
// auerr.ErrCanceled with the agent's networks, replay buffer and step
// counters untouched, so training can resume from exactly this state.
func (a *Agent) ObserveCtx(ctx context.Context, t Transition) (float64, error) {
	if ctx != nil && ctx.Err() != nil {
		return 0, auerr.Canceled(ctx)
	}
	return a.Observe(t), nil
}

// Observe records a transition and, past warmup, performs a replayed
// Q-learning update: target = r (terminal) or r + γ·max_a' Q_target(s',a').
// It returns the training loss, or 0 when no update ran.
func (a *Agent) Observe(t Transition) float64 {
	a.buffer.Add(t)
	a.steps++
	if a.buffer.Len() < a.cfg.WarmupSteps || a.steps%a.cfg.LearnEvery != 0 {
		return 0
	}
	batch := a.buffer.Sample(a.cfg.BatchSize)
	if a.online.Params() == nil {
		return 0
	}
	a.ensureOptimizer()

	totalLoss := 0.0
	if w := a.online.DataParallelWidth(len(batch)); w > 1 && a.observeParallel(batch, w) {
		// Ordered reduction over transitions: bit-identical to the
		// sequential accumulation below at any worker count.
		a.online.ZeroGrads()
		grads := a.online.Grads()
		for i := range batch {
			totalLoss += a.itemLoss[i]
			for j, g := range grads {
				g.AddInPlace(a.itemGrads[i][j])
			}
		}
	} else {
		a.online.ZeroGrads()
		for _, tr := range batch {
			pred, targetVec := a.tdPair(a.seqView(), a.online, a.target, tr)
			totalLoss += dqnLoss.Loss(pred, targetVec)
			a.online.Backward(dqnLoss.Grad(pred, targetVec))
		}
	}
	grads := a.online.Grads()
	for _, g := range grads {
		g.ScaleInPlace(1 / float64(len(batch)))
	}
	nn.ClipGradients(grads, 10)
	a.opt.Step(grads)
	a.trained++
	if a.trained%a.cfg.TargetSyncEvery == 0 {
		a.target.CopyParamsFrom(a.online)
	}
	loss := totalLoss / float64(len(batch))
	a.obsSteps.Inc()
	a.obsLoss.Set(loss)
	a.obsEps.Set(a.Epsilon())
	return loss
}

func (a *Agent) ensureOptimizer() {
	if a.opt == nil {
		a.opt = nn.NewAdam(a.online.Params(), a.cfg.LR)
	}
}

// dqnLoss is the TD-error loss shared by the sequential and parallel
// update paths.
var dqnLoss = nn.Huber{Delta: 1}

// tdPair computes one transition's (prediction, bootstrap target) pair on
// the given online/target networks. Bootstraps come from the target
// network; under DoubleDQN the online network picks the action and the
// target network scores it. Only the taken action's Q-value receives
// gradient.
func (a *Agent) tdPair(view *tensor.Tensor, online, target *nn.Network, tr Transition) (pred, targetVec *tensor.Tensor) {
	y := tr.Reward
	if !tr.Terminal {
		q := target.Forward(a.stateTensor(view, tr.NextState))
		var best float64
		if a.cfg.DoubleDQN {
			next := online.Forward(a.stateTensor(view, tr.NextState))
			best = q.Data()[stats.ArgMax(next.Data())]
		} else {
			best = q.Data()[stats.ArgMax(q.Data())]
		}
		y += a.cfg.Gamma * best
	}
	pred = online.Forward(a.stateTensor(view, tr.State))
	targetVec = pred.Clone()
	targetVec.Data()[tr.Action] = y
	return pred, targetVec
}

// observeParallel computes per-transition losses and gradients on worker
// replicas, filling a.itemLoss / a.itemGrads. It reports false when the
// networks cannot be replicated (the caller then runs sequentially).
// Transitions are assigned to replicas round-robin; since every
// transition's gradient lands in its own slot, scheduling never affects
// the reduced result.
func (a *Agent) observeParallel(batch []Transition, w int) bool {
	for len(a.onlineReps) < w {
		oRep, ok := a.online.Replica()
		if !ok {
			return false
		}
		tRep, ok := a.target.Replica()
		if !ok {
			return false
		}
		a.onlineReps = append(a.onlineReps, oRep)
		a.targetReps = append(a.targetReps, tRep)
	}
	for len(a.workerViews) < w {
		a.workerViews = append(a.workerViews, &tensor.Tensor{})
	}
	if cap(a.itemLoss) < len(batch) {
		a.itemLoss = make([]float64, len(batch))
	}
	a.itemLoss = a.itemLoss[:len(batch)]
	for len(a.itemGrads) < len(batch) {
		var gs []*tensor.Tensor
		for _, g := range a.online.Grads() {
			gs = append(gs, tensor.New(g.Shape()...))
		}
		a.itemGrads = append(a.itemGrads, gs)
	}
	fns := make([]func(), w)
	for wk := 0; wk < w; wk++ {
		wk := wk
		oRep, tRep := a.onlineReps[wk], a.targetReps[wk]
		view := a.workerViews[wk]
		fns[wk] = func() {
			for i := wk; i < len(batch); i += w {
				oRep.ZeroGrads()
				pred, targetVec := a.tdPair(view, oRep, tRep, batch[i])
				a.itemLoss[i] = dqnLoss.Loss(pred, targetVec)
				oRep.Backward(dqnLoss.Grad(pred, targetVec))
				for j, g := range oRep.Grads() {
					copy(a.itemGrads[i][j].Data(), g.Data())
				}
			}
		}
	}
	parallel.Run(fns...)
	return true
}
