// Package rl implements the reinforcement-learning algorithm the paper
// names for interactive programs: Q-learning (Watkins & Dayan) realized
// as a deep Q-network over either extracted internal program state
// ("All") or raw screen pixels ("Raw"). It provides the experience
// replay buffer, ε-greedy exploration, target-network bootstrapping and
// the per-step training procedure that the Autonomizer runtime invokes
// from the au_NN primitive in training mode.
package rl

import (
	"github.com/autonomizer/autonomizer/internal/auerr"
	"github.com/autonomizer/autonomizer/internal/stats"
)

// Transition is one (s, a, r, s', terminal) experience tuple. State
// vectors are owned by the buffer after Add; callers must not mutate
// them afterwards.
type Transition struct {
	State     []float64
	Action    int
	Reward    float64
	NextState []float64
	Terminal  bool
}

// ReplayBuffer is a fixed-capacity ring buffer of transitions with
// uniform random sampling — the experience-replay mechanism of DQN.
type ReplayBuffer struct {
	buf  []Transition
	next int
	full bool
	rng  *stats.RNG
}

// NewReplayBuffer creates a buffer holding at most capacity transitions.
func NewReplayBuffer(capacity int, rng *stats.RNG) *ReplayBuffer {
	if capacity <= 0 {
		auerr.Failf("rl: replay capacity must be positive, got %d", capacity)
	}
	return &ReplayBuffer{buf: make([]Transition, 0, capacity), rng: rng}
}

// Add appends a transition, evicting the oldest when full.
func (b *ReplayBuffer) Add(t Transition) {
	if len(b.buf) < cap(b.buf) {
		b.buf = append(b.buf, t)
		return
	}
	b.full = true
	b.buf[b.next] = t
	b.next = (b.next + 1) % cap(b.buf)
}

// Len reports the number of stored transitions.
func (b *ReplayBuffer) Len() int { return len(b.buf) }

// Cap reports the buffer capacity.
func (b *ReplayBuffer) Cap() int { return cap(b.buf) }

// Sample draws n transitions uniformly with replacement. It panics if
// the buffer is empty.
func (b *ReplayBuffer) Sample(n int) []Transition {
	if len(b.buf) == 0 {
		auerr.Failf("rl: sampling from empty replay buffer")
	}
	out := make([]Transition, n)
	for i := range out {
		out[i] = b.buf[b.rng.Intn(len(b.buf))]
	}
	return out
}

// TraceBytes estimates the in-memory footprint of the stored experience:
// 8 bytes per state scalar plus the tuple bookkeeping. Table 2's "Trace
// Size" columns are derived from this accounting — the paper's central
// quantitative point that raw-pixel traces dwarf internal-state traces.
func (b *ReplayBuffer) TraceBytes() int {
	total := 0
	for i := range b.buf {
		total += 8*(len(b.buf[i].State)+len(b.buf[i].NextState)) + 24
	}
	return total
}
