// Package canny implements the Canny edge detector (Canny 1986) — the
// paper's flagship supervised-learning subject. The pipeline is the
// classic four stages:
//
//  1. Gaussian smoothing with parameter sigma            (sImg)
//  2. Sobel gradient magnitude and direction             (mag, dir)
//  3. Non-maximum suppression                            (nms)
//  4. Hysteresis thresholding with parameters lo and hi  (result)
//
// The three parameters (sigma, lo, hi) are the target variables the
// paper autonomizes: their ideal values vary per input image, and the
// gradient-magnitude histogram computed inside hysteresis (hist) is the
// minimum-distance feature variable that Algorithm 1 discovers (Fig. 9).
//
// Detect optionally records its dynamic dependence structure into a
// dep.Graph and its intermediate values into a Trace, standing in for
// the paper's Valgrind-based instrumentation.
package canny

import (
	"fmt"

	"github.com/autonomizer/autonomizer/internal/dep"
	"github.com/autonomizer/autonomizer/internal/imaging"
	"github.com/autonomizer/autonomizer/internal/stats"
)

// HistBins is the size of the gradient-magnitude histogram feature (the
// paper's Canny annotation extracts a histogram; ours is 32 bins wide,
// scaled down from the paper's 32767 to match our 64×64 scenes).
const HistBins = 32

// Params are the tunable detector parameters — the target variables.
// Lo and Hi are hysteresis thresholds expressed as fractions of the
// maximum gradient magnitude (0 < Lo ≤ Hi ≤ 1); Sigma is the Gaussian
// smoothing width in pixels.
type Params struct {
	Sigma float64
	Lo    float64
	Hi    float64
}

// DefaultParams returns the stock configuration a non-autonomized run
// uses for every image — the paper's "baseline" setting. The values are
// what a user would pick by tuning once on a clean reference image
// (light smoothing, permissive thresholds); they degrade badly on noisy
// inputs, which is exactly the paper's motivating observation.
func DefaultParams() Params {
	return Params{Sigma: 0.8, Lo: 0.05, Hi: 0.15}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.Sigma <= 0 || p.Sigma > 8 {
		return fmt.Errorf("canny: sigma %v out of (0, 8]", p.Sigma)
	}
	if p.Lo <= 0 || p.Hi > 1 || p.Lo > p.Hi {
		return fmt.Errorf("canny: thresholds lo=%v hi=%v invalid", p.Lo, p.Hi)
	}
	return nil
}

// Clamp coerces the parameters into their valid ranges, used when a
// model's raw prediction strays slightly outside.
func (p Params) Clamp() Params {
	p.Sigma = stats.Clamp(p.Sigma, 0.3, 8)
	p.Lo = stats.Clamp(p.Lo, 0.01, 0.98)
	p.Hi = stats.Clamp(p.Hi, p.Lo+0.01, 1)
	return p
}

// Trace captures the intermediate program variables of one run — the
// values the Autonomizer runtime extracts as candidate features.
type Trace struct {
	// Image is the raw input (the Raw feature, distance 4).
	Image []float64
	// SImg is the smoothed image (the Med feature, distance 3).
	SImg []float64
	// Mag is the gradient magnitude (distance 2).
	Mag []float64
	// Hist is the magnitude histogram (the Min feature, distance 1).
	Hist []float64
	// MaxMag is the maximum gradient magnitude.
	MaxMag float64
	// EdgePixels counts pixels marked as edges in the result.
	EdgePixels int
}

// Detect runs the full pipeline. If g is non-nil the dynamic dependence
// events are recorded into it; if tr is non-nil the intermediate values
// are captured.
func Detect(img *imaging.Image, p Params, g *dep.Graph, tr *Trace) (*imaging.Image, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if g != nil {
		recordDeps(g)
	}
	if tr != nil {
		tr.Image = append([]float64(nil), img.Pix...)
	}

	// Stage 1: Gaussian smoothing.
	sImg := imaging.GaussianSmooth(img, p.Sigma)
	if tr != nil {
		tr.SImg = append([]float64(nil), sImg.Pix...)
	}

	// Stage 2: gradients.
	mag, dir := imaging.Sobel(sImg)
	if tr != nil {
		tr.Mag = append([]float64(nil), mag.Pix...)
	}

	// Stage 3: non-maximum suppression.
	nms := nonMaxSuppress(mag, dir)

	// Stage 4: hysteresis. The histogram is computed here, exactly where
	// the paper's annotation extracts it (hysteresis() in Fig. 11).
	maxMag, _ := stats.Max(nms.Pix)
	if maxMag == 0 {
		maxMag = 1
	}
	hist := stats.Histogram(nms.Pix, HistBins, 0, maxMag*(1+1e-9))
	if tr != nil {
		tr.Hist = append([]float64(nil), hist...)
		tr.MaxMag = maxMag
	}
	result := hysteresis(nms, p.Lo*maxMag, p.Hi*maxMag)
	if tr != nil {
		for _, v := range result.Pix {
			if v > 0 {
				tr.EdgePixels++
			}
		}
	}
	return result, nil
}

// nonMaxSuppress keeps only local maxima along the gradient direction.
func nonMaxSuppress(mag *imaging.Image, dir []int) *imaging.Image {
	out := imaging.NewImage(mag.W, mag.H)
	for y := 0; y < mag.H; y++ {
		for x := 0; x < mag.W; x++ {
			m := mag.At(x, y)
			var a, b float64
			switch dir[y*mag.W+x] {
			case 0: // horizontal gradient: compare left/right
				a, b = mag.At(x-1, y), mag.At(x+1, y)
			case 1: // 45°
				a, b = mag.At(x-1, y-1), mag.At(x+1, y+1)
			case 2: // vertical gradient: compare up/down
				a, b = mag.At(x, y-1), mag.At(x, y+1)
			default: // 135°
				a, b = mag.At(x+1, y-1), mag.At(x-1, y+1)
			}
			if m >= a && m >= b {
				out.Set(x, y, m)
			}
		}
	}
	return out
}

// hysteresis performs double-threshold edge linking: pixels above hi
// are strong seeds; pixels above lo survive only if connected (8-way)
// to a strong pixel.
func hysteresis(nms *imaging.Image, lo, hi float64) *imaging.Image {
	w, h := nms.W, nms.H
	out := imaging.NewImage(w, h)
	var stack [][2]int
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if nms.At(x, y) >= hi && out.At(x, y) == 0 {
				out.Set(x, y, 255)
				stack = append(stack, [2]int{x, y})
			}
		}
	}
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				nx, ny := p[0]+dx, p[1]+dy
				if nx < 0 || nx >= w || ny < 0 || ny >= h {
					continue
				}
				if out.At(nx, ny) == 0 && nms.At(nx, ny) >= lo {
					out.Set(nx, ny, 255)
					stack = append(stack, [2]int{nx, ny})
				}
			}
		}
	}
	return out
}

// recordDeps emits the dynamic dependence events of one Detect run —
// the def/use structure the paper's Valgrind tracer would observe. The
// variable names match Fig. 9/11.
func recordDeps(g *dep.Graph) {
	g.MarkInput("image")
	// canny(): smoothing.
	g.Def("gaussKernel", "sigma")
	g.Def("sImg", "image", "gaussKernel")
	g.Use("canny", "image")
	g.Use("canny", "sigma")
	g.Use("canny", "sImg")
	// magnitude(): gradients.
	g.Def("gx", "sImg")
	g.Def("gy", "sImg")
	g.Def("mag", "gx", "gy")
	g.Def("dir", "gx", "gy")
	g.Use("magnitude", "sImg")
	g.Use("magnitude", "mag")
	g.Use("magnitude", "dir")
	// non-max suppression.
	g.Def("nms", "mag", "dir")
	g.Use("suppress", "nms")
	// hysteresis(): histogram + thresholds + linking.
	g.Def("maxMag", "nms")
	g.Def("hist", "nms")
	g.Def("loThresh", "lo", "maxMag")
	g.Def("hiThresh", "hi", "maxMag")
	g.Def("strong", "nms", "hiThresh")
	g.Def("weak", "nms", "loThresh")
	g.Def("result", "hist", "strong", "weak")
	for _, v := range []string{"nms", "hist", "lo", "hi", "loThresh", "hiThresh", "strong", "weak", "result"} {
		g.Use("hysteresis", v)
	}
	// Image statistics the detector also derives (extra candidates that
	// Table 1 counts and the ranking must sift through).
	g.Def("meanImg", "image")
	g.Def("varImg", "image", "meanImg")
	g.Def("meanS", "sImg")
	g.Def("varS", "sImg", "meanS")
	g.Def("histCum", "hist")
	g.Def("edgeCount", "result")
	g.Def("edgeRatio", "edgeCount")
	g.Use("statistics", "meanImg")
	g.Use("statistics", "varImg")
}

// Inputs returns the program-input variable set for Algorithm 1.
func Inputs() []string { return []string{"image"} }

// Targets returns the target variable set (Table 1: 3 target vars).
func Targets() []string { return []string{"sigma", "lo", "hi"} }

// Score grades a detection against ground truth with SSIM, the paper's
// Canny metric (higher is better).
func Score(result, truth *imaging.Image) float64 {
	return imaging.SSIM(result, truth)
}

// Oracle grid-searches the parameter space for the best-scoring
// configuration on one scene — the autotuning stand-in that produces
// training labels (the paper trains against datasets with known ground
// truth). The search is coarse deliberately: labels need to be good,
// not perfect.
func Oracle(sc *imaging.Scene) (Params, float64) {
	best := DefaultParams()
	bestScore := -2.0
	for _, sigma := range []float64{0.6, 1.0, 1.6, 2.4, 3.2} {
		for _, lo := range []float64{0.05, 0.10, 0.18, 0.28} {
			for _, hiMul := range []float64{1.5, 2.5, 4.0} {
				p := Params{Sigma: sigma, Lo: lo, Hi: lo * hiMul}
				if p.Hi > 1 {
					continue
				}
				result, err := Detect(sc.Img, p, nil, nil)
				if err != nil {
					continue
				}
				if s := Score(result, sc.Truth); s > bestScore {
					bestScore = s
					best = p
				}
			}
		}
	}
	return best, bestScore
}
