package canny

import (
	"testing"

	"github.com/autonomizer/autonomizer/internal/dep"
	"github.com/autonomizer/autonomizer/internal/extract"
	"github.com/autonomizer/autonomizer/internal/imaging"
	"github.com/autonomizer/autonomizer/internal/stats"
)

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Errorf("default params invalid: %v", err)
	}
	bad := []Params{
		{Sigma: 0, Lo: 0.1, Hi: 0.3},
		{Sigma: 100, Lo: 0.1, Hi: 0.3},
		{Sigma: 1, Lo: 0, Hi: 0.3},
		{Sigma: 1, Lo: 0.5, Hi: 0.3},
		{Sigma: 1, Lo: 0.1, Hi: 1.5},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("params %+v validated", p)
		}
	}
}

func TestClamp(t *testing.T) {
	p := Params{Sigma: 99, Lo: -1, Hi: 0}.Clamp()
	if err := p.Validate(); err != nil {
		t.Errorf("clamped params still invalid: %v (%+v)", err, p)
	}
	p = Params{Sigma: 1, Lo: 0.9, Hi: 0.2}.Clamp()
	if p.Lo > p.Hi {
		t.Errorf("clamp did not order thresholds: %+v", p)
	}
}

func TestDetectRejectsBadParams(t *testing.T) {
	img := imaging.NewImage(8, 8)
	if _, err := Detect(img, Params{}, nil, nil); err == nil {
		t.Error("Detect with zero params succeeded")
	}
}

func TestDetectFindsStepEdge(t *testing.T) {
	img := imaging.NewImage(32, 32)
	for y := 0; y < 32; y++ {
		for x := 16; x < 32; x++ {
			img.Set(x, y, 220)
		}
	}
	result, err := Detect(img, DefaultParams(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// An edge column near x=15/16 must be marked.
	found := 0
	for y := 4; y < 28; y++ {
		for x := 14; x <= 17; x++ {
			if result.At(x, y) == 255 {
				found++
				break
			}
		}
	}
	if found < 20 {
		t.Errorf("step edge detected on only %d rows", found)
	}
	// Flat interior must be edge-free.
	for y := 4; y < 28; y++ {
		if result.At(5, y) != 0 || result.At(26, y) != 0 {
			t.Errorf("spurious edge in flat region at y=%d", y)
		}
	}
}

func TestDetectBlankImageHasNoEdges(t *testing.T) {
	img := imaging.NewImage(16, 16)
	result, err := Detect(img, DefaultParams(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range result.Pix {
		if v != 0 {
			t.Fatal("blank image produced edges")
		}
	}
}

func TestTraceCaptured(t *testing.T) {
	sc := imaging.GenerateScene(stats.NewRNG(1), imaging.SceneConfig{W: 32, H: 32})
	var tr Trace
	if _, err := Detect(sc.Img, DefaultParams(), nil, &tr); err != nil {
		t.Fatal(err)
	}
	if len(tr.Image) != 32*32 || len(tr.SImg) != 32*32 || len(tr.Mag) != 32*32 {
		t.Error("trace image stages missing")
	}
	if len(tr.Hist) != HistBins {
		t.Errorf("hist has %d bins, want %d", len(tr.Hist), HistBins)
	}
	if stats.Sum(tr.Hist) != 32*32 {
		t.Errorf("hist mass %v, want %v", stats.Sum(tr.Hist), 32*32)
	}
	if tr.MaxMag <= 0 {
		t.Error("MaxMag not captured")
	}
}

// TestAlgorithm1OnCannyGraph runs the real extraction pipeline on the
// detector's own dependence graph and checks the paper's headline
// result: hist is the min-distance feature for lo and hi.
func TestAlgorithm1OnCannyGraph(t *testing.T) {
	g := dep.NewGraph()
	sc := imaging.GenerateScene(stats.NewRNG(2), imaging.SceneConfig{W: 32, H: 32})
	if _, err := Detect(sc.Img, DefaultParams(), g, nil); err != nil {
		t.Fatal(err)
	}
	res := extract.SL(g, Inputs(), Targets())

	for _, target := range []string{"lo", "hi"} {
		feats := res[target]
		if len(feats) == 0 {
			t.Fatalf("no features for %s", target)
		}
		if feats[0].Name != "hist" {
			t.Errorf("min-distance feature for %s = %s (dist %d), want hist",
				target, feats[0].Name, feats[0].Dist)
		}
		// image must rank strictly worse than hist.
		var imageDist, histDist int
		for _, f := range feats {
			switch f.Name {
			case "image":
				imageDist = f.Dist
			case "hist":
				histDist = f.Dist
			}
		}
		if imageDist <= histDist {
			t.Errorf("image dist %d not worse than hist dist %d", imageDist, histDist)
		}
	}
	// Candidate count should be in Table 1's ballpark for Canny (26).
	n := extract.CandidateCount(g, Inputs())
	if n < 15 || n > 40 {
		t.Errorf("candidate count = %d, want ~26", n)
	}
}

// TestOracleBeatsDefaults verifies the premise of the whole SL
// experiment: per-image tuned parameters outscore the fixed default.
func TestOracleBeatsDefaults(t *testing.T) {
	scenes := imaging.GenerateCorpus(3, 4, imaging.SceneConfig{W: 32, H: 32})
	better := 0
	for _, sc := range scenes {
		_, oracleScore := Oracle(sc)
		defResult, err := Detect(sc.Img, DefaultParams(), nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if oracleScore >= Score(defResult, sc.Truth) {
			better++
		}
	}
	if better < 3 {
		t.Errorf("oracle beat defaults on only %d/4 scenes", better)
	}
}

// TestOptimalParamsVaryAcrossInputs verifies the paper's motivating
// observation: no single configuration is ideal for every input.
func TestOptimalParamsVaryAcrossInputs(t *testing.T) {
	scenes := imaging.GenerateCorpus(5, 6, imaging.SceneConfig{W: 32, H: 32})
	seen := map[Params]bool{}
	for _, sc := range scenes {
		p, _ := Oracle(sc)
		seen[p] = true
	}
	if len(seen) < 2 {
		t.Errorf("oracle chose the same params for all scenes: %v", seen)
	}
}
