package dep

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// cannyGraph reproduces the Fig. 9 dependence structure:
//
//	image → sImg → mag → hist → result
//	lo → result, hi → result (targets feed the common descendant)
func cannyGraph() *Graph {
	g := NewGraph()
	g.MarkInput("image")
	g.Def("sImg", "image", "sigma")
	g.Def("mag", "sImg")
	g.Def("hist", "mag")
	g.Def("result", "hist", "lo", "hi")
	return g
}

func TestDependentsTransitive(t *testing.T) {
	g := cannyGraph()
	d := g.Dependents("image")
	for _, want := range []string{"sImg", "mag", "hist", "result"} {
		if !d[want] {
			t.Errorf("dep(image) missing %s: %v", want, d)
		}
	}
	if d["image"] {
		t.Error("image is not on a cycle; must not be its own dependent")
	}
	if d["lo"] {
		t.Error("lo does not depend on image")
	}
	if len(g.Dependents("ghost")) != 0 {
		t.Error("unknown variable has dependents")
	}
}

func TestSelfDependence(t *testing.T) {
	g := NewGraph()
	g.Def("x", "x") // loop-carried x = f(x)
	if !g.Dependents("x")["x"] {
		t.Error("self-edge not reflected in dep(x)")
	}
	if !g.DependsOn("x", "x") {
		t.Error("DependsOn(x,x) false for self-edge")
	}
}

func TestCorrelated(t *testing.T) {
	g := cannyGraph()
	// hist and lo share the common dependent result.
	if !g.Correlated("hist", "lo") {
		t.Error("hist and lo should be correlated")
	}
	// Fig. 9: image and lo share result too (transitively).
	if !g.Correlated("image", "lo") {
		t.Error("image and lo should be correlated")
	}
	g2 := NewGraph()
	g2.Def("a2", "a1")
	g2.Def("b2", "b1")
	if g2.Correlated("a1", "b1") {
		t.Error("disconnected chains reported correlated")
	}
}

func TestCommonDescendants(t *testing.T) {
	g := cannyGraph()
	got := g.CommonDescendants("hist", "lo")
	if !reflect.DeepEqual(got, []string{"result"}) {
		t.Errorf("CommonDescendants = %v", got)
	}
}

// TestDistanceMatchesFig9 reproduces the paper's worked example: hist
// has distance 1 to the common descendant result, sImg distance 3
// (sImg→mag→hist→result), image distance 4.
func TestDistanceMatchesFig9(t *testing.T) {
	g := cannyGraph()
	cases := []struct {
		w    string
		want int
	}{
		{"hist", 1},
		{"mag", 2},
		{"sImg", 3},
		{"image", 4},
	}
	for _, tc := range cases {
		got, ok := g.Distance(tc.w, "lo")
		if !ok {
			t.Errorf("Distance(%s, lo) not found", tc.w)
			continue
		}
		if got != tc.want {
			t.Errorf("Distance(%s, lo) = %d, want %d", tc.w, got, tc.want)
		}
	}
	if _, ok := g.Distance("ghost", "lo"); ok {
		t.Error("distance from unknown variable reported")
	}
	if _, ok := g.Distance("lo", "ghost"); ok {
		t.Error("distance to unknown target reported")
	}
}

func TestDistancePicksNearestCommonDescendant(t *testing.T) {
	g := NewGraph()
	// w → a → c and w → c; v → c. Nearest common descendant is c at
	// distance 1 (direct edge), not 2 (via a).
	g.Def("a", "w")
	g.Def("c", "a")
	g.Def("c", "w")
	g.Def("c", "v")
	got, ok := g.Distance("w", "v")
	if !ok || got != 1 {
		t.Errorf("Distance = %d, %v; want 1, true", got, ok)
	}
}

func TestDefDeduplicatesEdges(t *testing.T) {
	g := NewGraph()
	g.Def("y", "x")
	g.Def("y", "x")
	g.Def("y", "x")
	if g.EdgeCount() != 1 {
		t.Errorf("EdgeCount = %d, want 1", g.EdgeCount())
	}
	if g.VarCount() != 2 {
		t.Errorf("VarCount = %d, want 2", g.VarCount())
	}
}

func TestUseFuncs(t *testing.T) {
	g := NewGraph()
	g.Def("speed", "pX")
	g.Use("updatePlayer", "speed")
	g.Use("updatePlayer", "playerX")
	g.Use("collision", "minionX")
	// playerX is used in the same function as speed, a dependent of pX.
	if !g.SharesUseFunction("playerX", "pX") {
		t.Error("playerX should share a use function with dep(pX)")
	}
	if g.SharesUseFunction("minionX", "pX") {
		t.Error("minionX should not share a use function with dep(pX)")
	}
	if len(g.UseFuncs("ghost")) != 0 {
		t.Error("unknown variable has use functions")
	}
	fns := g.UseFuncsOfDependents("pX")
	if !fns["updatePlayer"] || len(fns) != 1 {
		t.Errorf("UseFuncsOfDependents = %v", fns)
	}
}

func TestInputs(t *testing.T) {
	g := NewGraph()
	g.MarkInput("b")
	g.MarkInput("a")
	g.MarkInput("a") // idempotent
	if got := g.Inputs(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("Inputs = %v", got)
	}
	if !g.Has("a") || g.Has("zz") {
		t.Error("Has wrong")
	}
}

func TestVarsSorted(t *testing.T) {
	g := NewGraph()
	g.Def("z", "m", "a")
	got := g.Vars()
	if !reflect.DeepEqual(got, []string{"a", "m", "z"}) {
		t.Errorf("Vars = %v", got)
	}
}

func TestString(t *testing.T) {
	g := cannyGraph()
	if g.String() == "" {
		t.Error("empty String")
	}
}

// TestDependentsMonotone property: adding an edge never removes
// dependents — dynamic dependence accumulation is monotone.
func TestDependentsMonotone(t *testing.T) {
	prop := func(edges [][2]uint8) bool {
		g := NewGraph()
		names := []string{"a", "b", "c", "d", "e"}
		var prev map[string]bool
		for _, e := range edges {
			src := names[int(e[0])%len(names)]
			dst := names[int(e[1])%len(names)]
			g.Def(dst, src)
			cur := g.Dependents("a")
			for k := range prev {
				if !cur[k] {
					return false
				}
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestCorrelationSymmetric property: correlation (shared descendant) is
// symmetric, as the definition requires.
func TestCorrelationSymmetric(t *testing.T) {
	prop := func(edges [][2]uint8) bool {
		g := NewGraph()
		names := []string{"a", "b", "c", "d", "e", "f"}
		for _, e := range edges {
			g.Def(names[int(e[1])%len(names)], names[int(e[0])%len(names)])
		}
		for _, v := range names {
			for _, w := range names {
				if g.Correlated(v, w) != g.Correlated(w, v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestCycleTermination ensures BFS over cyclic graphs terminates.
func TestCycleTermination(t *testing.T) {
	g := NewGraph()
	g.Def("b", "a")
	g.Def("c", "b")
	g.Def("a", "c") // cycle a→b→c→a
	d := g.Dependents("a")
	if !d["a"] || !d["b"] || !d["c"] {
		t.Errorf("cyclic dependents = %v", d)
	}
	if dist, ok := g.Distance("a", "b"); !ok || dist < 1 {
		t.Errorf("cyclic distance = %d, %v", dist, ok)
	}
}

func TestDOTExport(t *testing.T) {
	g := cannyGraph()
	dot := g.DOT("canny")
	for _, want := range []string{
		`digraph "canny"`,
		`"image" [style=filled, fillcolor=lightgray];`,
		`"hist" -> "result";`,
		`"image" -> "sImg";`,
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q in:\n%s", want, dot)
		}
	}
	// Deterministic output.
	if g.DOT("canny") != dot {
		t.Error("DOT not deterministic")
	}
}
