// Package dep implements the dynamic program dependence graph that
// Autonomizer's automatic feature extraction (paper Section 4) is built
// on. The paper records this graph with a Valgrind-based tracer over
// C/C++ binaries; here the instrumented Go subjects report their
// def/use events directly, producing the same graph shape:
//
//   - a node per program variable;
//   - an edge v → w whenever w is (dynamically) computed from v, i.e.
//     w data-depends on v;
//   - dep(v) is then the set of transitive dependents (descendants)
//     of v, the paper's central relation;
//   - each variable also records the set of functions that use it,
//     which Algorithm 2 needs for its same-function filter.
//
// The graph is cumulative over a profiled execution: repeated Def events
// union their edges, mirroring dynamic dependence collection.
package dep

import (
	"fmt"
	"sort"
	"strings"
)

// Graph is a dynamic dependence graph. The zero value is not usable;
// call NewGraph.
type Graph struct {
	ids   map[string]int
	names []string
	// succ[v] lists w such that w depends on v (v → w).
	succ [][]int
	// pred[w] lists v such that w depends on v.
	pred [][]int
	// edgeSet deduplicates edges.
	edgeSet map[[2]int]bool
	// inputs marks program-input variables.
	inputs map[int]bool
	// useFuncs[v] is the set of function names in which v is used.
	useFuncs []map[string]bool
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{
		ids:     make(map[string]int),
		edgeSet: make(map[[2]int]bool),
		inputs:  make(map[int]bool),
	}
}

// node interns a variable name.
func (g *Graph) node(name string) int {
	if id, ok := g.ids[name]; ok {
		return id
	}
	id := len(g.names)
	g.ids[name] = id
	g.names = append(g.names, name)
	g.succ = append(g.succ, nil)
	g.pred = append(g.pred, nil)
	g.useFuncs = append(g.useFuncs, make(map[string]bool))
	return id
}

// Def records a definition event: dst is computed from srcs. Each src
// gains an edge src → dst. Self-dependence (loop-carried updates like
// x = x+1) is recorded as an explicit self-edge; Algorithm 2 relies on
// variables "depending on themselves".
func (g *Graph) Def(dst string, srcs ...string) {
	d := g.node(dst)
	for _, s := range srcs {
		sid := g.node(s)
		key := [2]int{sid, d}
		if g.edgeSet[key] {
			continue
		}
		g.edgeSet[key] = true
		g.succ[sid] = append(g.succ[sid], d)
		g.pred[d] = append(g.pred[d], sid)
	}
}

// Use records that variable v is used inside function fn.
func (g *Graph) Use(fn, v string) {
	g.useFuncs[g.node(v)][fn] = true
}

// MarkInput flags v as a program-input variable (Algorithm 1 seeds its
// candidate set from these).
func (g *Graph) MarkInput(v string) {
	g.inputs[g.node(v)] = true
}

// Inputs returns the input variables in sorted order.
func (g *Graph) Inputs() []string {
	out := make([]string, 0, len(g.inputs))
	for id := range g.inputs {
		out = append(out, g.names[id])
	}
	sort.Strings(out)
	return out
}

// Vars returns every variable name in sorted order.
func (g *Graph) Vars() []string {
	out := append([]string(nil), g.names...)
	sort.Strings(out)
	return out
}

// Has reports whether the variable is known to the graph.
func (g *Graph) Has(v string) bool {
	_, ok := g.ids[v]
	return ok
}

// Dependents returns dep(v): every variable reachable from v along
// dependence edges (transitive dependents), excluding v itself unless v
// lies on a cycle through itself. Unknown variables yield an empty set.
func (g *Graph) Dependents(v string) map[string]bool {
	out := make(map[string]bool)
	id, ok := g.ids[v]
	if !ok {
		return out
	}
	// BFS over succ edges.
	seen := make([]bool, len(g.names))
	queue := append([]int(nil), g.succ[id]...)
	for _, w := range g.succ[id] {
		seen[w] = true
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		out[g.names[cur]] = true
		for _, w := range g.succ[cur] {
			if !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	return out
}

// DependsOn reports whether w transitively depends on v (w ∈ dep(v)).
func (g *Graph) DependsOn(w, v string) bool {
	return g.Dependents(v)[w]
}

// CommonDescendants returns dep(v) ∩ dep(w) in sorted order.
func (g *Graph) CommonDescendants(v, w string) []string {
	dv := g.Dependents(v)
	dw := g.Dependents(w)
	var out []string
	for name := range dv {
		if dw[name] {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Correlated reports the paper's correlation relation: v and w are
// correlated iff they share at least one common dependent.
func (g *Graph) Correlated(v, w string) bool {
	dv := g.Dependents(v)
	for name := range g.Dependents(w) {
		if dv[name] {
			return true
		}
	}
	return false
}

// Distance returns the number of dependence edges on the shortest path
// from w to the nearest common descendant of w and v (Algorithm 1's
// BFS(GDep, w, first(dep(w) ∩ dep(v)))). It returns (0, false) when the
// variables share no descendant.
func (g *Graph) Distance(w, v string) (int, bool) {
	wid, ok := g.ids[w]
	if !ok {
		return 0, false
	}
	common := make(map[int]bool)
	dv := g.Dependents(v)
	for name := range g.Dependents(w) {
		if dv[name] {
			common[g.ids[name]] = true
		}
	}
	if len(common) == 0 {
		return 0, false
	}
	// BFS from w until the first common descendant.
	type item struct{ id, dist int }
	seen := make([]bool, len(g.names))
	seen[wid] = true
	queue := []item{{wid, 0}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if common[cur.id] && cur.dist > 0 {
			return cur.dist, true
		}
		for _, nxt := range g.succ[cur.id] {
			if !seen[nxt] {
				seen[nxt] = true
				queue = append(queue, item{nxt, cur.dist + 1})
			}
		}
	}
	return 0, false
}

// UseFuncs returns the set of functions that use v.
func (g *Graph) UseFuncs(v string) map[string]bool {
	id, ok := g.ids[v]
	if !ok {
		return map[string]bool{}
	}
	out := make(map[string]bool, len(g.useFuncs[id]))
	for fn := range g.useFuncs[id] {
		out[fn] = true
	}
	return out
}

// UseFuncsOfDependents returns the union of UseFuncs over dep(v) — the
// UseFunc[dep(v)] term of Algorithm 2.
func (g *Graph) UseFuncsOfDependents(v string) map[string]bool {
	out := make(map[string]bool)
	for name := range g.Dependents(v) {
		for fn := range g.UseFuncs(name) {
			out[fn] = true
		}
	}
	return out
}

// SharesUseFunction reports whether w is used in any function that also
// uses some dependent of v.
func (g *Graph) SharesUseFunction(w, v string) bool {
	target := g.UseFuncsOfDependents(v)
	for fn := range g.UseFuncs(w) {
		if target[fn] {
			return true
		}
	}
	return false
}

// EdgeCount reports the number of distinct dependence edges.
func (g *Graph) EdgeCount() int { return len(g.edgeSet) }

// VarCount reports the number of distinct variables.
func (g *Graph) VarCount() int { return len(g.names) }

// String renders a summary.
func (g *Graph) String() string {
	return fmt.Sprintf("DepGraph{%d vars, %d edges, %d inputs}", g.VarCount(), g.EdgeCount(), len(g.inputs))
}

// DOT renders the dependence graph in Graphviz format, with input
// variables shaded and edge direction following data flow (v -> w means
// w depends on v). Useful for inspecting what Algorithms 1/2 see.
func (g *Graph) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n", name)
	for id, label := range g.names {
		attrs := ""
		if g.inputs[id] {
			attrs = " [style=filled, fillcolor=lightgray]"
		}
		fmt.Fprintf(&b, "  %q%s;\n", label, attrs)
	}
	// Deterministic edge order.
	type edge struct{ from, to int }
	edges := make([]edge, 0, len(g.edgeSet))
	for e := range g.edgeSet {
		edges = append(edges, edge{e[0], e[1]})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].from != edges[j].from {
			return g.names[edges[i].from] < g.names[edges[j].from]
		}
		return g.names[edges[i].to] < g.names[edges[j].to]
	})
	for _, e := range edges {
		fmt.Fprintf(&b, "  %q -> %q;\n", g.names[e.from], g.names[e.to])
	}
	b.WriteString("}\n")
	return b.String()
}
