// Package trace records runtime value traces of candidate feature
// variables, the second input to the paper's RL feature extraction
// (Algorithm 2): each variable's values are sampled in a profiled time
// sequence, min-max scaled to [0, 1], and compared by Euclidean distance
// (redundancy pruning, threshold ε₁) and variance (unchanging-variable
// pruning, threshold ε₂).
package trace

import (
	"sort"

	"github.com/autonomizer/autonomizer/internal/stats"
)

// Recorder accumulates per-variable value traces during a profiling run.
type Recorder struct {
	traces map[string][]float64
	// order remembers first-recording order for deterministic iteration.
	order []string
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{traces: make(map[string][]float64)}
}

// Record appends one sampled value for the variable.
func (r *Recorder) Record(name string, value float64) {
	if _, seen := r.traces[name]; !seen {
		r.order = append(r.order, name)
	}
	r.traces[name] = append(r.traces[name], value)
}

// RecordAll samples a whole variable snapshot at once (one game-loop
// iteration's worth of state).
func (r *Recorder) RecordAll(snapshot map[string]float64) {
	// Sort for deterministic first-seen order.
	names := make([]string, 0, len(snapshot))
	for k := range snapshot {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		r.Record(k, snapshot[k])
	}
}

// Trace returns the raw value sequence for a variable (nil if absent).
func (r *Recorder) Trace(name string) []float64 {
	return append([]float64(nil), r.traces[name]...)
}

// ScaledTrace returns the min-max scaled trace — the Scale0-1(Tracing(w))
// term of Algorithm 2.
func (r *Recorder) ScaledTrace(name string) []float64 {
	return stats.MinMaxScale(r.traces[name])
}

// Variance returns the variance of the variable's raw trace.
func (r *Recorder) Variance(name string) float64 {
	return stats.Variance(r.traces[name])
}

// Names returns the recorded variables in first-seen order.
func (r *Recorder) Names() []string {
	return append([]string(nil), r.order...)
}

// Len reports the number of samples recorded for a variable.
func (r *Recorder) Len(name string) int { return len(r.traces[name]) }

// Similarity returns the Euclidean distance between two variables'
// scaled traces (zero-padded to equal length, per the paper).
func (r *Recorder) Similarity(a, b string) float64 {
	return stats.EuclideanDistance(r.ScaledTrace(a), r.ScaledTrace(b))
}
