package trace

import (
	"math"
	"reflect"
	"testing"
)

func TestRecordAndTrace(t *testing.T) {
	r := NewRecorder()
	r.Record("x", 1)
	r.Record("x", 2)
	r.Record("y", 5)
	if got := r.Trace("x"); !reflect.DeepEqual(got, []float64{1, 2}) {
		t.Errorf("Trace(x) = %v", got)
	}
	if r.Len("x") != 2 || r.Len("y") != 1 || r.Len("z") != 0 {
		t.Error("Len wrong")
	}
	if got := r.Trace("z"); len(got) != 0 {
		t.Errorf("Trace(z) = %v", got)
	}
}

func TestTraceReturnsCopy(t *testing.T) {
	r := NewRecorder()
	r.Record("x", 1)
	tr := r.Trace("x")
	tr[0] = 99
	if r.Trace("x")[0] != 1 {
		t.Error("Trace leaked internal slice")
	}
}

func TestScaledTrace(t *testing.T) {
	r := NewRecorder()
	for _, v := range []float64{10, 20, 30} {
		r.Record("x", v)
	}
	got := r.ScaledTrace("x")
	want := []float64{0, 0.5, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("ScaledTrace = %v", got)
		}
	}
}

func TestVariance(t *testing.T) {
	r := NewRecorder()
	for i := 0; i < 10; i++ {
		r.Record("const", 3)
		r.Record("varying", float64(i))
	}
	if r.Variance("const") != 0 {
		t.Error("constant trace has nonzero variance")
	}
	if r.Variance("varying") == 0 {
		t.Error("varying trace has zero variance")
	}
}

func TestNamesFirstSeenOrder(t *testing.T) {
	r := NewRecorder()
	r.Record("b", 1)
	r.Record("a", 1)
	r.Record("b", 2)
	if got := r.Names(); !reflect.DeepEqual(got, []string{"b", "a"}) {
		t.Errorf("Names = %v", got)
	}
}

func TestRecordAllDeterministic(t *testing.T) {
	r := NewRecorder()
	r.RecordAll(map[string]float64{"z": 1, "a": 2, "m": 3})
	if got := r.Names(); !reflect.DeepEqual(got, []string{"a", "m", "z"}) {
		t.Errorf("Names after RecordAll = %v", got)
	}
	r.RecordAll(map[string]float64{"z": 4, "a": 5, "m": 6})
	if got := r.Trace("z"); !reflect.DeepEqual(got, []float64{1, 4}) {
		t.Errorf("Trace(z) = %v", got)
	}
}

// TestSimilarityPaperScenario reproduces Fig. 15: two variables with
// (nearly) identical traces have similarity ≈ 0.
func TestSimilarityPaperScenario(t *testing.T) {
	r := NewRecorder()
	for i := 0; i < 20; i++ {
		v := math.Sin(float64(i) / 3)
		r.Record("posX", v)
		r.Record("roll", v*2+5) // affine copy: identical after scaling
		r.Record("speed", float64(i%7))
	}
	if d := r.Similarity("posX", "roll"); d > 1e-9 {
		t.Errorf("Similarity(posX, roll) = %v, want ~0", d)
	}
	if d := r.Similarity("posX", "speed"); d < 0.5 {
		t.Errorf("Similarity(posX, speed) = %v, want clearly nonzero", d)
	}
}
