package fleet

import (
	"fmt"
	"testing"
)

// TestRingDeterminism pins the property the whole fleet design leans
// on: two rings built from the same member set agree on every owner —
// regardless of insertion order — so a client-side resolver and a
// router (separate processes) route identically.
func TestRingDeterminism(t *testing.T) {
	a := NewRing(0)
	b := NewRing(0)
	members := []string{"http://h1:1", "http://h2:1", "http://h3:1"}
	for _, m := range members {
		a.Add(m)
	}
	for i := len(members) - 1; i >= 0; i-- {
		b.Add(members[i])
	}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("model-%d", i)
		ao, _ := a.Owner(key)
		bo, _ := b.Owner(key)
		if ao != bo {
			t.Fatalf("rings disagree on %q: %q vs %q", key, ao, bo)
		}
	}
}

// TestRingMinimalRemap: removing one member remaps only the keys that
// member owned; every other key keeps its owner. This is the property
// that makes a backend death cheap — the survivors keep their models.
func TestRingMinimalRemap(t *testing.T) {
	r := NewRing(0)
	members := []string{"http://h1:1", "http://h2:1", "http://h3:1", "http://h4:1"}
	for _, m := range members {
		r.Add(m)
	}
	before := make(map[string]string)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("model-%d", i)
		before[key], _ = r.Owner(key)
	}
	victim := members[1]
	r.Remove(victim)
	moved := 0
	for key, was := range before {
		now, ok := r.Owner(key)
		if !ok {
			t.Fatalf("ring emptied unexpectedly")
		}
		if was == victim {
			if now == victim {
				t.Fatalf("key %q still owned by removed member", key)
			}
			moved++
			continue
		}
		if now != was {
			t.Fatalf("key %q moved from surviving member %q to %q", key, was, now)
		}
	}
	if moved == 0 {
		t.Fatal("victim owned no keys; balance is broken")
	}
}

// TestRingBalance: with virtual nodes, 4 members split 10k keys within
// a loose band of even (no member under half or over double its fair
// share).
func TestRingBalance(t *testing.T) {
	r := NewRing(0)
	counts := make(map[string]int)
	for i := 0; i < 4; i++ {
		m := fmt.Sprintf("http://h%d:1", i)
		r.Add(m)
		counts[m] = 0
	}
	const keys = 10000
	for i := 0; i < keys; i++ {
		o, _ := r.Owner(fmt.Sprintf("model-%d", i))
		counts[o]++
	}
	fair := keys / 4
	for m, n := range counts {
		if n < fair/2 || n > fair*2 {
			t.Errorf("member %s owns %d of %d keys (fair share %d)", m, n, keys, fair)
		}
	}
}

// TestRingEdgeCases: empty ring, re-add, re-remove, membership.
func TestRingEdgeCases(t *testing.T) {
	r := NewRing(8)
	if _, ok := r.Owner("m"); ok {
		t.Fatal("empty ring returned an owner")
	}
	r.Add("a")
	r.Add("a") // idempotent
	if r.Len() != 1 {
		t.Fatalf("Len = %d after duplicate add, want 1", r.Len())
	}
	if o, ok := r.Owner("anything"); !ok || o != "a" {
		t.Fatalf("single-member ring routed to %q, %v", o, ok)
	}
	r.Remove("missing") // no-op
	r.Remove("a")
	if r.Len() != 0 {
		t.Fatalf("Len = %d after remove, want 0", r.Len())
	}
	if _, ok := r.Owner("m"); ok {
		t.Fatal("emptied ring returned an owner")
	}
	r.Add("b")
	r.Add("c")
	got := r.Members()
	if len(got) != 2 || got[0] != "b" || got[1] != "c" {
		t.Fatalf("Members = %v, want [b c]", got)
	}
}
