package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/autonomizer/autonomizer/internal/auerr"
	"github.com/autonomizer/autonomizer/internal/core"
	"github.com/autonomizer/autonomizer/internal/serve"
	"github.com/autonomizer/autonomizer/internal/stats"
)

// trainModel fits a small deterministic supervised model and returns
// its serving spec, SaveModel image, and a Test-mode reference runtime
// for in-process ground-truth predictions (the same recipe as the
// serve package's tests — fixed seeds, so every engine built from the
// image answers bit-identically).
func trainModel(t testing.TB, seed uint64) (core.ModelSpec, []byte, *core.Runtime) {
	t.Helper()
	spec := core.ModelSpec{Name: "m", Algo: core.AdamOpt, Hidden: []int{6}, LR: 0.01}
	tr := core.NewRuntimeWith(core.Train, core.WithSeed(seed), core.WithMetrics(nil))
	if err := tr.ConfigCtx(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(seed + 1)
	for i := 0; i < 200; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		if err := tr.RecordExample("m", x, []float64{x[0] - x[1]}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tr.FitCtx(context.Background(), "m", 5, 16); err != nil {
		t.Fatal(err)
	}
	data, err := tr.SaveModel("m")
	if err != nil {
		t.Fatal(err)
	}
	ref := core.NewRuntimeWith(core.Test, core.WithMetrics(nil))
	ref.LoadModel("m", data)
	if err := ref.ConfigCtx(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	return spec, data, ref
}

// backendFleet starts n auserve-equivalent backends (each a batching
// serve.Server behind an httptest listener) and returns their URLs and
// a kill function per backend.
func backendFleet(t testing.TB, n int, install func(*serve.Server)) (urls []string, kill []func()) {
	t.Helper()
	for i := 0; i < n; i++ {
		srv := serve.NewServer(serve.Config{Registry: nil})
		if install != nil {
			install(srv)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(func() { ts.Close(); srv.Close() })
		urls = append(urls, ts.URL)
		kill = append(kill, func() { ts.CloseClientConnections(); ts.Close() })
	}
	return urls, kill
}

func input(i int) []float64 {
	return []float64{float64(i%7) / 7, float64(i%11) / 11}
}

// TestFleetEquivalence is the fleet's bit-identity guarantee: a
// fleet-of-3 client, a single-server client and the embedded runtime
// produce byte-for-byte identical predictions, at client concurrency
// widths 1, 4 and 16. Run under -race in CI.
func TestFleetEquivalence(t *testing.T) {
	spec, data, ref := trainModel(t, 7)
	install := func(s *serve.Server) {
		if _, err := s.Install("m", spec, data); err != nil {
			t.Fatal(err)
		}
	}
	urls, _ := backendFleet(t, 3, install)
	single, _ := backendFleet(t, 1, install)

	// Ground truth from the embedded runtime, computed serially.
	const n = 48
	want := make([][]float64, n)
	for i := range want {
		out, err := ref.PredictCtx(context.Background(), "m", input(i))
		if err != nil {
			t.Fatal(err)
		}
		want[i] = out
	}

	clients := map[string]*serve.Client{
		"fleet3": NewClient(urls),
		"single": serve.NewClient(single[0]),
	}
	for _, width := range []int{1, 4, 16} {
		for name, c := range clients {
			t.Run(fmt.Sprintf("%s/width=%d", name, width), func(t *testing.T) {
				var wg sync.WaitGroup
				errs := make(chan error, n)
				for w := 0; w < width; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						for i := w; i < n; i += width {
							out, err := c.PredictCtx(context.Background(), "m", input(i))
							if err != nil {
								errs <- err
								return
							}
							if len(out) != len(want[i]) {
								errs <- fmt.Errorf("request %d: output size %d, want %d", i, len(out), len(want[i]))
								return
							}
							for j := range out {
								if math.Float64bits(out[j]) != math.Float64bits(want[i][j]) {
									errs <- fmt.Errorf("request %d: out[%d] = %x, want %x (not bit-identical)",
										i, j, math.Float64bits(out[j]), math.Float64bits(want[i][j]))
									return
								}
							}
						}
					}(w)
				}
				wg.Wait()
				close(errs)
				for err := range errs {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestFleetKillBackendZeroFailures is the self-healing guarantee on
// the router-less (client-side ring) path: with WithRetry, killing the
// backend that owns the model mid-run costs zero failed requests — the
// failed attempt marks the backend down, the retry re-resolves against
// the shrunken ring and lands on a survivor. Run under -race in CI.
func TestFleetKillBackendZeroFailures(t *testing.T) {
	spec, data, _ := trainModel(t, 7)
	urls, kill := backendFleet(t, 3, func(s *serve.Server) {
		if _, err := s.Install("m", spec, data); err != nil {
			t.Fatal(err)
		}
	})

	// The client and an offline ring agree on the owner (determinism is
	// pinned by TestRingDeterminism), so the test knows which backend to
	// assassinate.
	ring := NewRing(0)
	for _, u := range urls {
		ring.Add(u)
	}
	owner, _ := ring.Owner("m")
	victim := -1
	for i, u := range urls {
		if u == owner {
			victim = i
		}
	}

	c := NewClient(urls, serve.WithRetry(serve.RetryPolicy{Attempts: 4, Base: 5 * time.Millisecond}))
	want, err := c.PredictCtx(context.Background(), "m", input(0))
	if err != nil {
		t.Fatal(err)
	}

	const width, perWorker = 8, 30
	var failures, successes int64
	var mu sync.Mutex
	var once sync.Once
	var wg sync.WaitGroup
	for w := 0; w < width; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if w == 0 && i == perWorker/3 {
					once.Do(func() { kill[victim]() }) // SIGKILL-equivalent mid-run
				}
				out, err := c.PredictCtx(context.Background(), "m", input(0))
				mu.Lock()
				if err != nil {
					failures++
					t.Errorf("request failed after backend death: %v", err)
				} else {
					successes++
					for j := range out {
						if math.Float64bits(out[j]) != math.Float64bits(want[j]) {
							t.Errorf("rehashed prediction differs: %v vs %v", out, want)
							break
						}
					}
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if failures != 0 {
		t.Fatalf("%d of %d requests failed across the backend kill; want 0", failures, failures+successes)
	}
}

// routerFleet stands up n empty backends behind a Router (fast health
// probes) and returns the router, its base URL, backend URLs and kill
// functions.
func routerFleet(t testing.TB, n int) (*Router, string, []string, []func()) {
	t.Helper()
	urls, kill := backendFleet(t, n, nil)
	router := NewRouter(Config{
		Backends:       urls,
		HealthInterval: 25 * time.Millisecond,
		FailAfter:      2,
	})
	router.Start()
	ts := httptest.NewServer(router.Handler())
	t.Cleanup(func() { ts.Close(); router.Close() })
	return router, ts.URL, urls, kill
}

// TestRouterInstallAndForward: a snapshot POSTed to the router lands
// on exactly the ring-assigned backend, predictions through the router
// are bit-identical to embedded (both JSON and binary paths), the
// fleet catalog aggregates, and a router-level unknown model keeps the
// typed-error contract.
func TestRouterInstallAndForward(t *testing.T) {
	spec, data, ref := trainModel(t, 7)
	router, routerURL, urls, _ := routerFleet(t, 3)

	// Install through the router: one POST /v1/snapshot, shipped onward.
	var img bytes.Buffer
	if err := serve.WriteSnapshot(&img, []serve.SnapshotModel{{Name: "m", Spec: spec, Data: data}}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(routerURL+"/v1/snapshot", "application/octet-stream", bytes.NewReader(img.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot install answered HTTP %d", resp.StatusCode)
	}

	// Placement: the model lives on exactly the ring owner.
	ring := NewRing(0)
	for _, u := range urls {
		ring.Add(u)
	}
	owner, _ := ring.Owner("m")
	for _, u := range urls {
		var infos []serve.ModelInfo
		r, err := http.Get(u + "/v1/models")
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(r.Body).Decode(&infos); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if u == owner && len(infos) != 1 {
			t.Fatalf("owner %s serves %d models, want 1", u, len(infos))
		}
		if u != owner && len(infos) != 0 {
			t.Fatalf("non-owner %s serves %d models, want 0", u, len(infos))
		}
	}

	// The router's surface is a drop-in auserve: both predict encodings,
	// bit-identical to the embedded runtime.
	for name, c := range map[string]*serve.Client{
		"binary": serve.NewClient(routerURL),
		"json":   serve.NewClient(routerURL, serve.WithJSONPredict()),
	} {
		for i := 0; i < 8; i++ {
			want, err := ref.PredictCtx(context.Background(), "m", input(i))
			if err != nil {
				t.Fatal(err)
			}
			got, err := c.PredictCtx(context.Background(), "m", input(i))
			if err != nil {
				t.Fatalf("%s predict through router: %v", name, err)
			}
			for j := range got {
				if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
					t.Fatalf("%s request %d not bit-identical: %v vs %v", name, i, got, want)
				}
			}
		}
	}

	// Catalog aggregation and typed-error pass-through.
	infos, err := serve.NewClient(routerURL).Models(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Name != "m" {
		t.Fatalf("fleet catalog = %+v, want [m]", infos)
	}
	if _, err := serve.NewClient(routerURL).PredictCtx(context.Background(), "nope", []float64{1}); !errors.Is(err, auerr.ErrUnknownModel) {
		t.Fatalf("unknown model through router = %v, want ErrUnknownModel", err)
	}

	// Fleet posture names every backend and records the placement.
	st := router.Status(context.Background())
	if !st.Ready || st.LiveBackends != 3 || st.ModelsInstalled != 1 {
		t.Fatalf("Status = ready=%v live=%d installed=%d", st.Ready, st.LiveBackends, st.ModelsInstalled)
	}
	if st.Placements["m"] != owner {
		t.Fatalf("placement of m = %q, want %q", st.Placements["m"], owner)
	}
}

// TestRouterSurvivesBackendDeath: killing the owning backend mid-run
// costs zero failed requests even WITHOUT client-side retry — the
// router demotes the dead backend synchronously on the transport
// error, re-ships the model to the rehashed owner, and retries the
// forward internally. The health loop then reports the death in the
// fleet posture. Run under -race in CI.
func TestRouterSurvivesBackendDeath(t *testing.T) {
	spec, data, _ := trainModel(t, 7)
	router, routerURL, urls, kill := routerFleet(t, 3)

	var img bytes.Buffer
	if err := serve.WriteSnapshot(&img, []serve.SnapshotModel{{Name: "m", Spec: spec, Data: data}}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(routerURL+"/v1/snapshot", "application/octet-stream", bytes.NewReader(img.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	ring := NewRing(0)
	for _, u := range urls {
		ring.Add(u)
	}
	owner, _ := ring.Owner("m")
	victim := -1
	for i, u := range urls {
		if u == owner {
			victim = i
		}
	}

	c := serve.NewClient(routerURL)
	want, err := c.PredictCtx(context.Background(), "m", input(0))
	if err != nil {
		t.Fatal(err)
	}

	const width, perWorker = 8, 30
	var failures int64
	var mu sync.Mutex
	var once sync.Once
	var wg sync.WaitGroup
	for w := 0; w < width; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if w == 0 && i == perWorker/3 {
					once.Do(func() { kill[victim]() })
				}
				out, err := c.PredictCtx(context.Background(), "m", input(0))
				mu.Lock()
				if err != nil {
					failures++
					t.Errorf("request failed across backend death: %v", err)
				} else {
					for j := range out {
						if math.Float64bits(out[j]) != math.Float64bits(want[j]) {
							t.Errorf("failover prediction differs: %v vs %v", out, want)
							break
						}
					}
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if failures != 0 {
		t.Fatalf("%d requests failed across the backend kill; want 0", failures)
	}

	// The health loop notices the corpse and the posture reflects it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := router.Status(context.Background())
		if st.LiveBackends == 2 {
			if !st.Ready {
				t.Fatal("fleet with 2/3 live backends should stay ready")
			}
			if st.Placements["m"] == owner {
				t.Fatalf("model still placed on dead backend %s", owner)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("health loop never demoted the dead backend: %+v", st.Checks)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
