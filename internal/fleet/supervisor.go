package fleet

import (
	"fmt"
	"log/slog"
	"math/rand"
	"os"
	"os/exec"
	"sync"
	"syscall"
	"time"

	"github.com/autonomizer/autonomizer/internal/obs"
)

// Supervisor defaults.
const (
	DefaultBackoffBase      = 200 * time.Millisecond
	DefaultBackoffMax       = 10 * time.Second
	DefaultCrashLoopWindow  = 30 * time.Second
	DefaultCrashLoopCrashes = 5
	DefaultStopGrace        = 3 * time.Second
)

// WorkerState is one supervised process's lifecycle state. The
// machine (DESIGN.md §5i):
//
//	starting → up → (exit) → backoff → starting → ...
//	                   └ crash loop → dead   (terminal, until Stop/restart-all)
//	any state → stopped                      (on Stop)
type WorkerState string

const (
	// WorkerStarting: between spawn and a successful process start.
	WorkerStarting WorkerState = "starting"
	// WorkerUp: the process is running (liveness only — readiness is
	// the router's business, via the worker's own /healthz).
	WorkerUp WorkerState = "up"
	// WorkerBackoff: the process exited; the supervisor is waiting out
	// the exponential backoff before respawning.
	WorkerBackoff WorkerState = "backoff"
	// WorkerDead: crash-looping (CrashLoopCrashes exits inside
	// CrashLoopWindow); the supervisor gives up so a broken binary
	// can't burn CPU forever. The router rehashes the worker's models
	// away on its own health evidence.
	WorkerDead WorkerState = "dead"
	// WorkerStopped: deliberately stopped via Stop/Close.
	WorkerStopped WorkerState = "stopped"
)

// WorkerSpec describes one process the supervisor owns.
type WorkerSpec struct {
	// Name identifies the worker in logs, States and callbacks.
	Name string
	// Command is the argv to spawn (Command[0] resolved via PATH).
	Command []string
	// Env, when non-nil, replaces the inherited environment.
	Env []string
}

// SupervisorConfig tunes a Supervisor; zero values select the
// documented defaults.
type SupervisorConfig struct {
	// BackoffBase is the first restart delay (default 200ms); each
	// consecutive crash doubles it with ±25% jitter.
	BackoffBase time.Duration
	// BackoffMax caps the restart delay (default 10s).
	BackoffMax time.Duration
	// CrashLoopWindow and CrashLoopCrashes define the give-up rule:
	// CrashLoopCrashes exits within CrashLoopWindow mark the worker
	// dead (defaults 5 in 30s).
	CrashLoopWindow  time.Duration
	CrashLoopCrashes int
	// StopGrace is how long Stop waits after SIGTERM before SIGKILL
	// (default 3s).
	StopGrace time.Duration
	// Logger overrides the structured logger (default obs.Logger()).
	Logger *slog.Logger
	// OnStateChange, when set, observes every worker state transition
	// (called from the worker's own goroutine; keep it fast).
	OnStateChange func(name string, state WorkerState)
}

func (c SupervisorConfig) withDefaults() SupervisorConfig {
	if c.BackoffBase <= 0 {
		c.BackoffBase = DefaultBackoffBase
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = DefaultBackoffMax
	}
	if c.CrashLoopWindow <= 0 {
		c.CrashLoopWindow = DefaultCrashLoopWindow
	}
	if c.CrashLoopCrashes < 1 {
		c.CrashLoopCrashes = DefaultCrashLoopCrashes
	}
	if c.StopGrace <= 0 {
		c.StopGrace = DefaultStopGrace
	}
	if c.Logger == nil {
		c.Logger = obs.Logger()
	}
	return c
}

// worker is one supervised process and its loop goroutine.
type worker struct {
	spec WorkerSpec

	mu       sync.Mutex
	state    WorkerState
	pid      int
	restarts int         // lifetime respawn count
	crashes  []time.Time // exits inside the crash-loop window
	proc     *os.Process

	stop chan struct{}
	done chan struct{}
}

// WorkerStatus is one worker's row in States (and the aufleet statusz).
type WorkerStatus struct {
	Name     string      `json:"name"`
	State    WorkerState `json:"state"`
	PID      int         `json:"pid,omitempty"`
	Restarts int         `json:"restarts"`
}

// Supervisor owns backend process lifecycle and nothing else: it
// spawns workers, watches for exits, restarts with jittered
// exponential backoff, and gives up on crash loops. It never routes,
// inspects or retries a request — request semantics live entirely in
// the workers and the router, which discovers a restarted worker
// through its own health probes. That separation keeps the supervisor
// a fully generic process babysitter: nothing in this file knows what
// an auserve is.
type Supervisor struct {
	cfg SupervisorConfig
	log *slog.Logger

	mu      sync.Mutex
	workers map[string]*worker
	closed  bool
}

// NewSupervisor builds an empty supervisor.
func NewSupervisor(cfg SupervisorConfig) *Supervisor {
	cfg = cfg.withDefaults()
	return &Supervisor{
		cfg:     cfg,
		log:     cfg.Logger.With("component", "supervisor"),
		workers: make(map[string]*worker),
	}
}

// Start spawns a worker and begins supervising it. Names are unique;
// restarting a stopped/dead name replaces its record.
func (s *Supervisor) Start(spec WorkerSpec) error {
	if spec.Name == "" || len(spec.Command) == 0 {
		return fmt.Errorf("fleet: worker needs a name and a command")
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("fleet: supervisor is closed")
	}
	if old, ok := s.workers[spec.Name]; ok {
		st := old.State()
		if st != WorkerStopped && st != WorkerDead {
			s.mu.Unlock()
			return fmt.Errorf("fleet: worker %q already running (%s)", spec.Name, st)
		}
	}
	w := &worker{
		spec:  spec,
		state: WorkerStarting,
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	s.workers[spec.Name] = w
	s.mu.Unlock()
	go s.run(w)
	return nil
}

// Stop terminates one worker: SIGTERM, StopGrace, then SIGKILL. It
// waits for the worker loop to exit.
func (s *Supervisor) Stop(name string) error {
	s.mu.Lock()
	w, ok := s.workers[name]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("fleet: unknown worker %q", name)
	}
	w.requestStop()
	<-w.done
	return nil
}

// Close stops every worker and refuses further Starts.
func (s *Supervisor) Close() {
	s.mu.Lock()
	s.closed = true
	ws := make([]*worker, 0, len(s.workers))
	for _, w := range s.workers {
		ws = append(ws, w)
	}
	s.mu.Unlock()
	for _, w := range ws {
		w.requestStop()
	}
	for _, w := range ws {
		<-w.done
	}
}

// States reports every worker's status, sorted by name.
func (s *Supervisor) States() []WorkerStatus {
	s.mu.Lock()
	ws := make([]*worker, 0, len(s.workers))
	for _, w := range s.workers {
		ws = append(ws, w)
	}
	s.mu.Unlock()
	out := make([]WorkerStatus, 0, len(ws))
	for _, w := range ws {
		w.mu.Lock()
		st := WorkerStatus{Name: w.spec.Name, State: w.state, Restarts: w.restarts}
		if w.state == WorkerUp {
			st.PID = w.pid
		}
		out = append(out, st)
		w.mu.Unlock()
	}
	sortWorkerStatuses(out)
	return out
}

func sortWorkerStatuses(ws []WorkerStatus) {
	for i := 1; i < len(ws); i++ {
		for j := i; j > 0 && ws[j].Name < ws[j-1].Name; j-- {
			ws[j], ws[j-1] = ws[j-1], ws[j]
		}
	}
}

func (w *worker) State() WorkerState {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.state
}

func (w *worker) requestStop() {
	w.mu.Lock()
	select {
	case <-w.stop:
	default:
		close(w.stop)
	}
	w.mu.Unlock()
}

func (s *Supervisor) setState(w *worker, st WorkerState) {
	w.mu.Lock()
	changed := w.state != st
	w.state = st
	w.mu.Unlock()
	if changed {
		s.log.Info("worker state", "worker", w.spec.Name, "state", st)
		if s.cfg.OnStateChange != nil {
			s.cfg.OnStateChange(w.spec.Name, st)
		}
	}
}

// run is one worker's supervision loop: spawn, wait, classify the
// exit, back off, respawn — until Stop or a crash-loop verdict.
func (s *Supervisor) run(w *worker) {
	defer close(w.done)
	consec := 0 // crashes since the process last stayed up a while
	for {
		select {
		case <-w.stop:
			s.setState(w, WorkerStopped)
			return
		default:
		}
		s.setState(w, WorkerStarting)
		cmd := exec.Command(w.spec.Command[0], w.spec.Command[1:]...)
		cmd.Env = w.spec.Env
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		// Each worker leads its own process group so Stop can signal the
		// whole tree: a worker that shells out must not leave orphans
		// holding ports (or the supervisor's stdio) after termination.
		cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
		started := time.Now()
		if err := cmd.Start(); err != nil {
			s.log.Error("worker spawn failed", "worker", w.spec.Name, "err", err)
			if s.recordCrash(w, &consec) {
				return
			}
			if !s.backoff(w, consec) {
				return
			}
			continue
		}
		w.mu.Lock()
		w.pid = cmd.Process.Pid
		w.proc = cmd.Process
		w.mu.Unlock()
		s.setState(w, WorkerUp)

		exited := make(chan error, 1)
		go func() { exited <- cmd.Wait() }()

		select {
		case <-w.stop:
			s.terminate(w, cmd, exited)
			s.setState(w, WorkerStopped)
			return
		case err := <-exited:
			uptime := time.Since(started)
			s.log.Warn("worker exited", "worker", w.spec.Name,
				"uptime", uptime.Round(time.Millisecond), "err", err)
			if uptime > s.cfg.CrashLoopWindow {
				// A long-lived process that finally died is a fresh
				// incident, not an escalation of the last one.
				consec = 0
			}
			if s.recordCrash(w, &consec) {
				return
			}
			if !s.backoff(w, consec) {
				return
			}
		}
	}
}

// recordCrash notes one exit; returns true when the crash-loop rule
// fires (worker marked dead, loop must stop).
func (s *Supervisor) recordCrash(w *worker, consec *int) bool {
	*consec++
	now := time.Now()
	w.mu.Lock()
	w.restarts++
	w.crashes = append(w.crashes, now)
	kept := w.crashes[:0]
	for _, t := range w.crashes {
		if now.Sub(t) <= s.cfg.CrashLoopWindow {
			kept = append(kept, t)
		}
	}
	w.crashes = kept
	looping := len(w.crashes) >= s.cfg.CrashLoopCrashes
	w.mu.Unlock()
	if looping {
		s.log.Error("worker crash-looping; giving up",
			"worker", w.spec.Name, "crashes", len(w.crashes),
			"window", s.cfg.CrashLoopWindow)
		s.setState(w, WorkerDead)
		return true
	}
	return false
}

// backoff waits out the jittered exponential delay before the next
// spawn; returns false when Stop interrupted the wait.
func (s *Supervisor) backoff(w *worker, consec int) bool {
	d := s.cfg.BackoffBase << uint(consec-1)
	if d <= 0 || d > s.cfg.BackoffMax {
		d = s.cfg.BackoffMax
	}
	d = time.Duration(float64(d) * (0.75 + 0.5*rand.Float64()))
	s.setState(w, WorkerBackoff)
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-w.stop:
		s.setState(w, WorkerStopped)
		return false
	case <-t.C:
		return true
	}
}

// terminate implements graceful stop: SIGTERM to the worker's process
// group, wait StopGrace, SIGKILL the group.
func (s *Supervisor) terminate(w *worker, cmd *exec.Cmd, exited <-chan error) {
	signalGroup(cmd.Process.Pid, syscall.SIGTERM)
	t := time.NewTimer(s.cfg.StopGrace)
	defer t.Stop()
	select {
	case <-exited:
	case <-t.C:
		signalGroup(cmd.Process.Pid, syscall.SIGKILL)
		<-exited
	}
}

// signalGroup signals a worker's whole process group, falling back to
// the lone process if the group is already gone.
func signalGroup(pid int, sig syscall.Signal) {
	if err := syscall.Kill(-pid, sig); err != nil {
		_ = syscall.Kill(pid, sig)
	}
}
