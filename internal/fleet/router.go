package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"time"

	"github.com/autonomizer/autonomizer/internal/auerr"
	"github.com/autonomizer/autonomizer/internal/obs"
	"github.com/autonomizer/autonomizer/internal/serve"
)

// Router defaults.
const (
	// DefaultHealthInterval is the health-probe cadence per backend.
	DefaultHealthInterval = 250 * time.Millisecond
	// DefaultFailAfter is how many consecutive probe failures demote a
	// backend: one lost packet must not rehash the fleet.
	DefaultFailAfter = 2
)

// maxBody caps any request body the router buffers (same posture as
// the serve package's JSON limit).
const maxBody = 256 << 20

// Config tunes a Router. Backends is the only required field; every
// zero value selects the documented default.
type Config struct {
	// Backends are the auserve base URLs the ring shards models across.
	Backends []string
	// VNodes is the virtual-node count per backend (default
	// DefaultVNodes).
	VNodes int
	// HealthInterval is the per-backend /healthz?deep=1 probe cadence
	// (default 250ms).
	HealthInterval time.Duration
	// FailAfter is how many consecutive probe failures mark a backend
	// down (default 2). A deep-health 503 — alive but not fit to serve,
	// e.g. a drifting model — counts as a failure: the router drains
	// traffic away exactly as DESIGN.md §5h promises.
	FailAfter int
	// HTTPClient overrides the forwarding/probing transport (default
	// http.DefaultClient).
	HTTPClient *http.Client
	// Logger overrides the structured logger (default obs.Logger()).
	Logger *slog.Logger
	// Supervisor, when the backends are supervised children (aufleet
	// -spawn), lets /statusz include their process states. The router
	// never acts on it — health evidence comes from its own probes.
	Supervisor *Supervisor
}

func (c Config) withDefaults() Config {
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = DefaultHealthInterval
	}
	if c.FailAfter < 1 {
		c.FailAfter = DefaultFailAfter
	}
	if c.HTTPClient == nil {
		c.HTTPClient = http.DefaultClient
	}
	if c.Logger == nil {
		c.Logger = obs.Logger()
	}
	return c
}

// backendState is one backend's row in the router's health table.
type backendState struct {
	url       string
	up        bool
	fails     int // consecutive probe failures
	lastErr   string
	downSince time.Time
}

// Router is the fleet frontend: it speaks the exact auserve wire
// protocol (JSON and binary predict, act, observe, reload, snapshot
// install, model listing) and forwards each request to the backend the
// consistent-hash ring assigns the request's model to. It owns model
// placement — snapshot images POSTed to the router are kept and shipped
// (one-model AUSN images) to the owning backend, and re-shipped to the
// new owner whenever ring membership changes — and it aggregates
// per-backend health and /statusz into one fleet posture.
//
// The router never interprets request semantics beyond sniffing the
// model name: predictions, batching, shedding (429/ErrOverloaded) and
// drift verdicts all happen in the workers, and their responses pass
// through byte-for-byte. That keeps every serving contract — typed
// errors, bit-identical outputs, explicit backpressure — end-to-end.
type Router struct {
	cfg   Config
	hc    *http.Client
	log   *slog.Logger
	start time.Time

	mu       sync.Mutex
	ring     *Ring
	backends map[string]*backendState
	order    []string                       // configured backend order (display)
	store    map[string]serve.SnapshotModel // installed model images
	placed   map[string]string              // model → backend last shipped to

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// NewRouter builds a Router over the configured backends. Backends
// start optimistically up (requests flow before the first probe
// completes); the health loop — started by Start — demotes unreachable
// ones within FailAfter probes.
func NewRouter(cfg Config) *Router {
	cfg = cfg.withDefaults()
	rt := &Router{
		cfg:      cfg,
		hc:       cfg.HTTPClient,
		log:      cfg.Logger.With("component", "fleet"),
		start:    time.Now(),
		ring:     NewRing(cfg.VNodes),
		backends: make(map[string]*backendState),
		store:    make(map[string]serve.SnapshotModel),
		placed:   make(map[string]string),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for _, b := range cfg.Backends {
		for len(b) > 0 && b[len(b)-1] == '/' {
			b = b[:len(b)-1]
		}
		if b == "" {
			continue
		}
		if _, dup := rt.backends[b]; dup {
			continue
		}
		rt.backends[b] = &backendState{url: b, up: true}
		rt.order = append(rt.order, b)
		rt.ring.Add(b)
	}
	return rt
}

// Start launches the health loop. Call Close to stop it.
func (rt *Router) Start() {
	go rt.healthLoop()
}

// Close stops the health loop and waits for it to exit.
func (rt *Router) Close() {
	rt.stopOnce.Do(func() { close(rt.stop) })
	<-rt.done
}

// ---- membership ----

// healthLoop probes every backend's /healthz?deep=1 each interval. A
// 200 marks the backend up immediately (one good probe is enough — the
// supervisor just restarted it and its models are waiting to be
// re-shipped); FailAfter consecutive failures mark it down. Every
// transition triggers a placement pass.
func (rt *Router) healthLoop() {
	defer close(rt.done)
	t := time.NewTicker(rt.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
			rt.probeAll()
		}
	}
}

func (rt *Router) probeAll() {
	rt.mu.Lock()
	urls := append([]string(nil), rt.order...)
	rt.mu.Unlock()
	var wg sync.WaitGroup
	for _, u := range urls {
		wg.Add(1)
		go func(u string) {
			defer wg.Done()
			rt.probe(u)
		}(u)
	}
	wg.Wait()
}

func (rt *Router) probe(url string) {
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.HealthInterval*4)
	defer cancel()
	err := rt.deepHealth(ctx, url)
	rt.mu.Lock()
	b, ok := rt.backends[url]
	if !ok {
		rt.mu.Unlock()
		return
	}
	if err == nil {
		b.fails = 0
		b.lastErr = ""
		if !b.up {
			b.up = true
			b.downSince = time.Time{}
			rt.ring.Add(url)
			rt.log.Info("backend up", "backend", url)
			rt.mu.Unlock()
			rt.ensurePlacement()
			return
		}
		rt.mu.Unlock()
		return
	}
	b.fails++
	b.lastErr = err.Error()
	if b.up && b.fails >= rt.cfg.FailAfter {
		rt.demoteLocked(b, err)
		rt.mu.Unlock()
		rt.ensurePlacement()
		return
	}
	rt.mu.Unlock()
}

func (rt *Router) deepHealth(ctx context.Context, url string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/healthz?deep=1", nil)
	if err != nil {
		return err
	}
	resp, err := rt.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("deep health answered HTTP %d", resp.StatusCode)
	}
	return nil
}

// demoteLocked marks a backend down and rehashes its models away:
// removed from the ring, and its placement records cleared so the
// models re-ship wherever they now hash — including back to this
// backend once it returns (a supervisor-restarted process is empty and
// needs everything again). Caller holds rt.mu.
func (rt *Router) demoteLocked(b *backendState, cause error) {
	b.up = false
	b.downSince = time.Now()
	rt.ring.Remove(b.url)
	for model, at := range rt.placed {
		if at == b.url {
			delete(rt.placed, model)
		}
	}
	rt.log.Warn("backend down", "backend", b.url, "cause", cause)
}

// markUnavailable is the synchronous demotion path: a forward attempt
// hit a transport failure, so the backend is gone right now — no need
// to wait FailAfter probe intervals to stop sending it traffic.
func (rt *Router) markUnavailable(url string, cause error) {
	rt.mu.Lock()
	b, ok := rt.backends[url]
	if !ok || !b.up {
		rt.mu.Unlock()
		return
	}
	b.fails = rt.cfg.FailAfter
	b.lastErr = cause.Error()
	rt.demoteLocked(b, cause)
	rt.mu.Unlock()
	rt.ensurePlacement()
}

// owner resolves the live owner of a model.
func (rt *Router) owner(model string) (string, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	o, ok := rt.ring.Owner(model)
	if !ok {
		return "", auerr.E(auerr.ErrUnavailable, "fleet: all %d backends are down", len(rt.backends))
	}
	return o, nil
}

// ---- placement ----

// ensurePlacement reconciles model placement with the current ring:
// every installed model whose recorded placement differs from its ring
// owner is shipped (as a one-model AUSN image) to that owner. Runs
// after every membership change and every snapshot install; failures
// are logged and retried on the next transition (or when the health
// loop flips the target backend again).
func (rt *Router) ensurePlacement() {
	type shipment struct {
		model serve.SnapshotModel
		to    string
	}
	rt.mu.Lock()
	var ships []shipment
	for name, m := range rt.store {
		o, ok := rt.ring.Owner(name)
		if !ok {
			continue
		}
		if rt.placed[name] != o {
			ships = append(ships, shipment{model: m, to: o})
		}
	}
	rt.mu.Unlock()
	for _, s := range ships {
		if err := rt.ship(s.model, s.to); err != nil {
			rt.log.Warn("model shipment failed", "model", s.model.Name, "to", s.to, "err", err)
			continue
		}
		rt.mu.Lock()
		// Re-check the owner: membership may have moved again while the
		// image was in flight. A stale shipment is harmless (the backend
		// just holds an unused model) but must not be recorded as current.
		if o, ok := rt.ring.Owner(s.model.Name); ok && o == s.to {
			rt.placed[s.model.Name] = s.to
		}
		rt.mu.Unlock()
		rt.log.Info("model placed", "model", s.model.Name, "backend", s.to)
	}
}

// ship POSTs a one-model AUSN image to a backend's /v1/snapshot.
func (rt *Router) ship(m serve.SnapshotModel, to string) error {
	var img bytes.Buffer
	if err := serve.WriteSnapshot(&img, []serve.SnapshotModel{m}); err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, to+"/v1/snapshot", bytes.NewReader(img.Bytes()))
	if err != nil {
		return err
	}
	resp, err := rt.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fleet: backend answered HTTP %d to snapshot install", resp.StatusCode)
	}
	return nil
}

// ---- HTTP surface ----

// Handler returns the router's HTTP surface — endpoint-compatible with
// a single auserve, so autonomizer.NewClient/Dial pointed at the router
// needs no fleet awareness at all:
//
//	POST /v1/predict            forwarded to the model's owner (JSON or binary)
//	POST /v1/act                forwarded to the model's owner
//	POST /v1/observe            forwarded to the model's owner
//	POST /v1/snapshot           stored, split and shipped per the hash ring
//	POST /models/{name}/reload  forwarded to the model's owner
//	GET  /v1/models             union of every live backend's models
//	GET  /healthz               fleet liveness; ?deep=1 requires ≥1 live backend
//	GET  /statusz               fleet posture (per-backend health + /statusz)
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/predict", rt.handlePredict)
	mux.HandleFunc("POST /v1/act", rt.handleModelJSON("/v1/act"))
	mux.HandleFunc("POST /v1/observe", rt.handleModelJSON("/v1/observe"))
	mux.HandleFunc("POST /v1/snapshot", rt.handleSnapshot)
	mux.HandleFunc("POST /models/{name}/reload", rt.handleReload)
	mux.HandleFunc("GET /v1/models", rt.handleModels)
	mux.HandleFunc("GET /healthz", obs.HealthzHandler(rt.readiness))
	mux.HandleFunc("GET /statusz", rt.handleStatusz)
	return mux
}

// writeError renders the serve-compatible uniform error body, mapping
// the auerr class to the same statuses the backends use.
func writeError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch auerr.Class(err) {
	case "unavailable":
		code = http.StatusServiceUnavailable
	case "overloaded":
		code = http.StatusTooManyRequests
	case "unknown_model":
		code = http.StatusNotFound
	case "spec_invalid", "missing_input":
		code = http.StatusBadRequest
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
		Class string `json:"class,omitempty"`
	}{Error: err.Error(), Class: auerr.Class(err)})
}

// traced continues the caller's trace from the incoming traceparent
// (same contract as serve.Server.traced).
func (rt *Router) traced(r *http.Request) context.Context {
	ctx := r.Context()
	if !obs.TracingEnabled() {
		return ctx
	}
	ctx, err := obs.ContinueFromHeader(ctx, r.Header.Get(obs.TraceparentHeader))
	if err != nil {
		rt.log.Debug("rejected malformed traceparent", "err", err)
	}
	return ctx
}

// forward proxies one model-addressed request to the model's owner,
// copying the backend's status, content type and body through
// byte-for-byte — the router adds routing, not semantics. A transport
// failure demotes the owner synchronously and retries against the
// rehashed ring (bounded by the fleet size), so a single backend death
// costs at most one in-flight request per concurrent caller — and even
// that one succeeds when the next owner already holds the model.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, span, path, model string, body []byte, contentType string) {
	ctx, sp := obs.StartSpan(rt.traced(r), span)
	var spanErr error
	defer func() { sp.End(spanErr) }()

	rt.mu.Lock()
	attempts := len(rt.backends)
	rt.mu.Unlock()
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for try := 0; try < attempts; try++ {
		owner, err := rt.owner(model)
		if err != nil {
			spanErr = err
			writeError(w, err)
			return
		}
		// Close the placement race before forwarding: a membership change
		// may have rehashed this model here while the background shipment
		// is still in flight (or failed). The router is the placement
		// authority, so it verifies — and if needed performs — the ship
		// synchronously; duplicate ships are idempotent installs.
		rt.mu.Lock()
		m, stored := rt.store[model]
		placedAt := rt.placed[model]
		rt.mu.Unlock()
		if stored && placedAt != owner {
			if err := rt.ship(m, owner); err != nil {
				rt.log.Warn("inline model shipment failed", "model", model, "to", owner, "err", err)
			} else {
				rt.mu.Lock()
				if o, ok := rt.ring.Owner(model); ok && o == owner {
					rt.placed[model] = owner
				}
				rt.mu.Unlock()
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, owner+path, bytes.NewReader(body))
		if err != nil {
			spanErr = err
			writeError(w, err)
			return
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		if obs.TracingEnabled() {
			obs.InjectTraceparent(ctx, req.Header)
		} else if tp := r.Header.Get(obs.TraceparentHeader); tp != "" {
			// Tracing off router-side: pass the caller's context through
			// untouched so client→backend continuation still works.
			req.Header.Set(obs.TraceparentHeader, tp)
		}
		resp, err := rt.hc.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				spanErr = auerr.Canceled(ctx)
				writeError(w, spanErr)
				return
			}
			lastErr = auerr.E(auerr.ErrUnavailable, "fleet: backend %s unreachable: %v", owner, err)
			rt.markUnavailable(owner, err)
			continue
		}
		func() {
			defer resp.Body.Close()
			if ct := resp.Header.Get("Content-Type"); ct != "" {
				w.Header().Set("Content-Type", ct)
			}
			w.WriteHeader(resp.StatusCode)
			if _, err := io.Copy(w, resp.Body); err != nil {
				rt.log.Debug("response relay failed", "err", err)
			}
		}()
		return
	}
	spanErr = lastErr
	writeError(w, lastErr)
}

// handlePredict sniffs the model name out of either predict encoding —
// the JSON body's model field or the binary frame header — and
// forwards the original bytes untouched.
func (rt *Router) handlePredict(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBody))
	if err != nil {
		writeError(w, auerr.E(auerr.ErrSpecInvalid, "fleet: read predict body: %v", err))
		return
	}
	ct := r.Header.Get("Content-Type")
	var model string
	if len(ct) >= len(serve.BinaryContentType) && ct[:len(serve.BinaryContentType)] == serve.BinaryContentType {
		model, _, err = serve.DecodePredictFrame(bytes.NewReader(body))
		if err != nil {
			writeError(w, auerr.E(auerr.ErrSpecInvalid, "fleet: bad binary frame: %v", err))
			return
		}
	} else {
		var req struct {
			Model string `json:"model"`
		}
		if err := json.Unmarshal(body, &req); err != nil {
			writeError(w, auerr.E(auerr.ErrSpecInvalid, "fleet: bad predict request: %v", err))
			return
		}
		model = req.Model
	}
	rt.forward(w, r, "fleet.predict", "/v1/predict", model, body, ct)
}

// handleModelJSON forwards a JSON endpoint whose body carries the
// model name in a "model" field (act, observe).
func (rt *Router) handleModelJSON(path string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, maxBody))
		if err != nil {
			writeError(w, auerr.E(auerr.ErrSpecInvalid, "fleet: read body: %v", err))
			return
		}
		var req struct {
			Model string `json:"model"`
		}
		if err := json.Unmarshal(body, &req); err != nil {
			writeError(w, auerr.E(auerr.ErrSpecInvalid, "fleet: bad request: %v", err))
			return
		}
		rt.forward(w, r, "fleet"+path, path, req.Model, body, "application/json")
	}
}

// handleSnapshot is the fleet install path: the posted AUSN image is
// decoded, each model is remembered (the router is the placement
// authority and re-ships on every membership change), and shipped to
// the backend the ring assigns it to.
func (rt *Router) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	_, sp := obs.StartSpan(rt.traced(r), "fleet.snapshot")
	var spanErr error
	defer func() { sp.End(spanErr) }()

	models, err := serve.ReadSnapshot(io.LimitReader(r.Body, maxBody))
	if err != nil {
		spanErr = auerr.E(auerr.ErrSpecInvalid, "fleet: snapshot rejected: %v", err)
		writeError(w, spanErr)
		return
	}
	rt.mu.Lock()
	for _, m := range models {
		rt.store[m.Name] = m
		delete(rt.placed, m.Name) // force a (re-)ship even on same-owner reinstall
	}
	rt.mu.Unlock()
	rt.ensurePlacement()
	writeJSON(w, serve.SnapshotResponse{Models: len(models)})
}

// handleReload forwards a hot reload to the model's owner. A raw
// weight image in the body also refreshes the router's stored copy, so
// a later rehash re-ships the reloaded weights, not the stale install.
func (rt *Router) handleReload(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBody))
	if err != nil {
		writeError(w, auerr.E(auerr.ErrSpecInvalid, "fleet: read reload body: %v", err))
		return
	}
	if len(body) > 0 {
		rt.mu.Lock()
		if m, ok := rt.store[name]; ok {
			m.Data = append([]byte(nil), body...)
			rt.store[name] = m
		}
		rt.mu.Unlock()
	}
	rt.forward(w, r, "fleet.reload", "/models/"+name+"/reload", name, body, "application/octet-stream")
}

// handleModels answers with the union of every live backend's model
// list, sorted by name (one backend owns each model, so the union is
// the fleet's catalog).
func (rt *Router) handleModels(w http.ResponseWriter, r *http.Request) {
	rt.mu.Lock()
	live := rt.ring.Members()
	rt.mu.Unlock()
	seen := make(map[string]serve.ModelInfo)
	for _, b := range live {
		infos, err := rt.backendModels(r.Context(), b)
		if err != nil {
			rt.log.Debug("model listing failed", "backend", b, "err", err)
			continue
		}
		for _, mi := range infos {
			seen[mi.Name] = mi
		}
	}
	out := make([]serve.ModelInfo, 0, len(seen))
	for _, mi := range seen {
		out = append(out, mi)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	writeJSON(w, out)
}

func (rt *Router) backendModels(ctx context.Context, url string) ([]serve.ModelInfo, error) {
	ctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/v1/models", nil)
	if err != nil {
		return nil, err
	}
	resp, err := rt.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	var out []serve.ModelInfo
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxBody)).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}

// readiness is the fleet's deep-health verdict: ready while at least
// one backend is live, with one check row per backend.
func (rt *Router) readiness() (bool, map[string]string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	checks := make(map[string]string, len(rt.backends))
	liveCount := 0
	for _, b := range rt.backends {
		key := "backend:" + b.url
		if b.up {
			liveCount++
			checks[key] = "ok"
		} else {
			checks[key] = fmt.Sprintf("down since %s: %s",
				b.downSince.Format(time.RFC3339), b.lastErr)
		}
	}
	if liveCount == 0 {
		checks["fleet"] = "no live backends"
		return false, checks
	}
	checks["fleet"] = fmt.Sprintf("%d/%d backends live", liveCount, len(rt.backends))
	return true, checks
}

// writeJSON writes a 200 JSON body.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		obs.Logger().Error("fleet: response encode failed", "err", err)
	}
}
