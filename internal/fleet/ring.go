// Package fleet is the horizontal-scale serving layer: it puts N
// auserve backends behind one front door. Three pieces compose
// (DESIGN.md §5i):
//
//   - Ring — a consistent-hash ring with virtual nodes mapping model
//     names to backends, so adding or losing one backend remaps only
//     that backend's share of the models.
//   - Router — an HTTP frontend speaking the exact serve wire protocol
//     (JSON and binary predict, act, observe, reload, snapshot
//     install), forwarding each request to the model's owner, shipping
//     AUSN snapshot shards to the backends the ring assigns them to,
//     and aggregating per-backend health and /statusz into one fleet
//     posture.
//   - Supervisor — a neutral process babysitter owning backend
//     lifecycle only: spawn, monitor, restart with jittered
//     exponential backoff, crash-loop detection. All request semantics
//     stay in the workers (the auserve processes); the supervisor
//     never inspects a request.
//
// The fleet-aware client (NewClient) runs the same ring client-side,
// so a deployment can start router-less — Dial("fleet:http://a,http://b")
// — and graduate to a routed fleet by pointing Dial at the router URL,
// with zero host-code changes either way.
package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVNodes is the default virtual-node count per backend: enough
// that model shares stay within a few percent of even for small
// fleets, cheap enough that ring rebuilds are microseconds.
const DefaultVNodes = 64

// Ring is a consistent-hash ring with virtual nodes. Each member
// (backend base URL) projects VNodes points onto a 64-bit circle; a
// key's owner is the member owning the first point at or clockwise of
// the key's hash. Removing a member therefore remaps only the keys
// that member owned, and virtual nodes keep the shares balanced.
//
// Ring is not safe for concurrent use; callers (Router, the fleet
// resolver) guard it with their own lock.
type Ring struct {
	vnodes  int
	keys    []uint64 // sorted point hashes
	owners  map[uint64]string
	members map[string]struct{}
}

// NewRing returns an empty ring with the given virtual-node count per
// member (<=0 selects DefaultVNodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Ring{
		vnodes:  vnodes,
		owners:  make(map[uint64]string),
		members: make(map[string]struct{}),
	}
}

// hash64 is FNV-1a over s with a 64-bit avalanche finalizer (the
// MurmurHash3 fmix64 step). Raw FNV clusters badly when inputs differ
// only in a short suffix — exactly the "member#i" virtual-node shape —
// which skews ring shares several-fold; the finalizer restores uniform
// point spread. The whole function is fixed arithmetic, stable across
// processes and Go versions, so a client-side ring and a router ring
// with the same member set agree on every owner.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Add inserts a member's virtual nodes. Adding a present member is a
// no-op. In the astronomically unlikely event of a point collision
// between two members, the incumbent keeps the point.
func (r *Ring) Add(member string) {
	if _, ok := r.members[member]; ok {
		return
	}
	r.members[member] = struct{}{}
	for i := 0; i < r.vnodes; i++ {
		h := hash64(fmt.Sprintf("%s#%d", member, i))
		if _, taken := r.owners[h]; taken {
			continue
		}
		r.owners[h] = member
		r.keys = append(r.keys, h)
	}
	sort.Slice(r.keys, func(i, j int) bool { return r.keys[i] < r.keys[j] })
}

// Remove deletes a member and its virtual nodes. Removing an absent
// member is a no-op.
func (r *Ring) Remove(member string) {
	if _, ok := r.members[member]; !ok {
		return
	}
	delete(r.members, member)
	kept := r.keys[:0]
	for _, h := range r.keys {
		if r.owners[h] == member {
			delete(r.owners, h)
			continue
		}
		kept = append(kept, h)
	}
	r.keys = kept
}

// Owner returns the member owning key, or ok=false on an empty ring.
func (r *Ring) Owner(key string) (string, bool) {
	if len(r.keys) == 0 {
		return "", false
	}
	h := hash64(key)
	i := sort.Search(len(r.keys), func(i int) bool { return r.keys[i] >= h })
	if i == len(r.keys) {
		i = 0 // wrap: the circle's first point owns the top arc
	}
	return r.owners[r.keys[i]], true
}

// Has reports membership.
func (r *Ring) Has(member string) bool {
	_, ok := r.members[member]
	return ok
}

// Members returns the member set sorted.
func (r *Ring) Members() []string {
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Len reports the member count.
func (r *Ring) Len() int { return len(r.members) }
