package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// The fleet posture surface: GET /statusz on the router renders one
// document answering "what is the whole fleet doing" — per-backend
// liveness, consecutive-failure counts, model placements, and each
// live backend's own /statusz embedded verbatim, so a single curl
// shows queue occupancy, shed totals and drift verdicts across every
// shard (DESIGN.md §5i).

// BackendStatus is one backend's row in the fleet /statusz document.
type BackendStatus struct {
	URL              string   `json:"url"`
	Up               bool     `json:"up"`
	ConsecutiveFails int      `json:"consecutive_fails"`
	LastError        string   `json:"last_error,omitempty"`
	DownSeconds      float64  `json:"down_seconds,omitempty"`
	Models           []string `json:"models"` // placements recorded here
	// Statusz is the backend's own /statusz document, fetched live;
	// null when the backend is down or the fetch failed.
	Statusz json.RawMessage `json:"statusz,omitempty"`
}

// Statusz is the fleet /statusz document.
type Statusz struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Ready         bool    `json:"ready"`
	Backends      int     `json:"backends"`
	LiveBackends  int     `json:"live_backends"`
	VNodes        int     `json:"vnodes"`

	ModelsInstalled int               `json:"models_installed"`
	Placements      map[string]string `json:"placements"`

	Fleet  []BackendStatus   `json:"fleet"`
	Checks map[string]string `json:"checks"`
	// Workers reports supervised backend processes (aufleet -spawn);
	// absent in router-only deployments.
	Workers []WorkerStatus `json:"workers,omitempty"`
}

// Status assembles the current fleet posture, fetching each live
// backend's /statusz concurrently (bounded by ctx).
func (rt *Router) Status(ctx context.Context) Statusz {
	ready, checks := rt.readiness()

	rt.mu.Lock()
	st := Statusz{
		UptimeSeconds:   time.Since(rt.start).Seconds(),
		Ready:           ready,
		Backends:        len(rt.backends),
		VNodes:          rt.cfg.VNodes,
		ModelsInstalled: len(rt.store),
		Placements:      make(map[string]string, len(rt.placed)),
		Checks:          checks,
	}
	rows := make([]BackendStatus, 0, len(rt.order))
	for _, u := range rt.order {
		b := rt.backends[u]
		row := BackendStatus{
			URL: b.url, Up: b.up, ConsecutiveFails: b.fails, LastError: b.lastErr,
			Models: []string{},
		}
		if !b.up && !b.downSince.IsZero() {
			row.DownSeconds = time.Since(b.downSince).Seconds()
		}
		if b.up {
			st.LiveBackends++
		}
		rows = append(rows, row)
	}
	for model, at := range rt.placed {
		st.Placements[model] = at
		for i := range rows {
			if rows[i].URL == at {
				rows[i].Models = append(rows[i].Models, model)
			}
		}
	}
	rt.mu.Unlock()

	var wg sync.WaitGroup
	for i := range rows {
		if !rows[i].Up {
			continue
		}
		wg.Add(1)
		go func(row *BackendStatus) {
			defer wg.Done()
			doc, err := rt.backendStatusz(ctx, row.URL)
			if err != nil {
				rt.log.Debug("statusz fetch failed", "backend", row.URL, "err", err)
				return
			}
			row.Statusz = doc
		}(&rows[i])
	}
	wg.Wait()
	for i := range rows {
		sort.Strings(rows[i].Models)
	}
	st.Fleet = rows
	if rt.cfg.Supervisor != nil {
		st.Workers = rt.cfg.Supervisor.States()
	}
	return st
}

func (rt *Router) backendStatusz(ctx context.Context, url string) (json.RawMessage, error) {
	ctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/statusz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := rt.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return nil, err
	}
	if !json.Valid(body) {
		return nil, fmt.Errorf("invalid JSON statusz body")
	}
	return json.RawMessage(body), nil
}

// handleStatusz renders the aggregated fleet status document.
func (rt *Router) handleStatusz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, rt.Status(r.Context()))
}
