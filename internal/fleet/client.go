package fleet

import (
	"errors"
	"sync"
	"time"

	"github.com/autonomizer/autonomizer/internal/auerr"
	"github.com/autonomizer/autonomizer/internal/serve"
)

// DefaultCooldown is how long the client-side resolver keeps a backend
// out of the ring after a transport failure before probing it again.
// Long enough that a retry burst doesn't hammer a corpse, short enough
// that a supervisor-restarted backend rejoins within a human blink.
const DefaultCooldown = 2 * time.Second

// resolver is the fleet-aware serve.Resolver: a consistent-hash ring
// over the configured backends, minus the ones currently marked down.
// Endpoint is called once per attempt, so the serve.Client retry loop
// composes into rehash-on-retry: attempt 1 hits the old owner, the
// transport failure marks it down, attempt 2 resolves against the
// shrunken ring and lands on the model's new owner.
type resolver struct {
	cooldown time.Duration

	mu   sync.Mutex
	all  []string             // configured membership, in Dial order
	ring *Ring                // live members only
	down map[string]time.Time // backend → when it may be probed again
}

func newResolver(endpoints []string, vnodes int, cooldown time.Duration) *resolver {
	if cooldown <= 0 {
		cooldown = DefaultCooldown
	}
	r := &resolver{
		cooldown: cooldown,
		all:      append([]string(nil), endpoints...),
		ring:     NewRing(vnodes),
		down:     make(map[string]time.Time),
	}
	for _, e := range endpoints {
		r.ring.Add(e)
	}
	return r
}

// Endpoint implements serve.Resolver: the live owner of model. Expired
// cooldowns revive their backends first, so a restarted backend wins
// its models back without any success signal — the next resolution
// probes it. An empty live ring (every backend down) fails fast with
// ErrUnavailable, the class the retry policy backs off on.
func (r *resolver) Endpoint(model string) (string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := time.Now()
	for b, until := range r.down {
		if now.After(until) {
			delete(r.down, b)
			r.ring.Add(b)
		}
	}
	owner, ok := r.ring.Owner(model)
	if !ok {
		return "", auerr.E(auerr.ErrUnavailable, "fleet: all %d backends are down", len(r.all))
	}
	return owner, nil
}

// Report implements serve.Resolver. Only ErrUnavailable — the process
// behind the URL is gone (connection refused/reset) or answered 503 —
// demotes a backend; request-level failures (unknown model, shed load,
// bad input) say nothing about the backend's health and must not
// trigger a rehash that would send every model elsewhere.
func (r *resolver) Report(endpoint string, err error) {
	if err == nil || !errors.Is(err, auerr.ErrUnavailable) {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.ring.Has(endpoint) {
		return
	}
	r.ring.Remove(endpoint)
	r.down[endpoint] = time.Now().Add(r.cooldown)
}

// Live reports the currently-live backends (tests, diagnostics).
func (r *resolver) Live() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ring.Members()
}

// NewClient returns a fleet-aware *serve.Client: model names are
// consistent-hashed across the endpoints, every retry re-resolves (so
// a dead backend's models rehash to the survivors), and the usual
// client options apply on top. It implements the root package's
// Querier exactly like the single-server client — it IS the
// single-server client, with a ring where the fixed base URL was.
//
// Pair it with serve.WithRetry for the self-healing behaviour: without
// retry the first request after a backend death still fails with
// ErrUnavailable (and marks the backend down); with retry that same
// call transparently lands on the rehashed owner.
func NewClient(endpoints []string, opts ...serve.ClientOption) *serve.Client {
	trimmed := make([]string, 0, len(endpoints))
	for _, e := range endpoints {
		for len(e) > 0 && e[len(e)-1] == '/' {
			e = e[:len(e)-1]
		}
		if e != "" {
			trimmed = append(trimmed, e)
		}
	}
	endpoints = trimmed
	res := newResolver(endpoints, DefaultVNodes, DefaultCooldown)
	base := ""
	if len(endpoints) > 0 {
		base = endpoints[0]
	}
	return serve.NewClient(base, append([]serve.ClientOption{serve.WithResolver(res)}, opts...)...)
}
