package fleet

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// collectStates wires OnStateChange into a buffered channel so tests
// observe the worker state machine without polling.
func collectStates() (chan WorkerState, func(string, WorkerState)) {
	ch := make(chan WorkerState, 64)
	return ch, func(_ string, st WorkerState) { ch <- st }
}

func waitState(t *testing.T, ch <-chan WorkerState, want WorkerState, within time.Duration) {
	t.Helper()
	deadline := time.After(within)
	for {
		select {
		case st := <-ch:
			if st == want {
				return
			}
		case <-deadline:
			t.Fatalf("state %q not reached within %v", want, within)
		}
	}
}

// TestSupervisorRestartsCrashedWorker: a worker that crashes once and
// then stays up walks starting → up → backoff → starting → up, with
// the supervisor doing the respawning.
func TestSupervisorRestartsCrashedWorker(t *testing.T) {
	marker := filepath.Join(t.TempDir(), "ran-once")
	states, onChange := collectStates()
	s := NewSupervisor(SupervisorConfig{
		BackoffBase:   10 * time.Millisecond,
		OnStateChange: onChange,
	})
	defer s.Close()
	// First run: create the marker and exit 1. Second run: sleep.
	script := "if [ -f " + marker + " ]; then sleep 60; else : > " + marker + "; exit 1; fi"
	if err := s.Start(WorkerSpec{Name: "w", Command: []string{"/bin/sh", "-c", script}}); err != nil {
		t.Fatal(err)
	}
	waitState(t, states, WorkerUp, 5*time.Second)      // first spawn
	waitState(t, states, WorkerBackoff, 5*time.Second) // crash observed
	waitState(t, states, WorkerUp, 5*time.Second)      // respawned
	if _, err := os.Stat(marker); err != nil {
		t.Fatalf("marker not written: %v", err)
	}
	sts := s.States()
	if len(sts) != 1 || sts[0].Restarts < 1 {
		t.Fatalf("States = %+v, want one worker with >=1 restart", sts)
	}
}

// TestSupervisorCrashLoopGivesUp: a worker that always crashes hits
// the crash-loop rule and lands in the terminal dead state instead of
// burning CPU forever.
func TestSupervisorCrashLoopGivesUp(t *testing.T) {
	states, onChange := collectStates()
	s := NewSupervisor(SupervisorConfig{
		BackoffBase:      time.Millisecond,
		BackoffMax:       5 * time.Millisecond,
		CrashLoopWindow:  10 * time.Second,
		CrashLoopCrashes: 3,
		OnStateChange:    onChange,
	})
	defer s.Close()
	if err := s.Start(WorkerSpec{Name: "w", Command: []string{"/bin/false"}}); err != nil {
		t.Fatal(err)
	}
	waitState(t, states, WorkerDead, 10*time.Second)
	sts := s.States()
	if sts[0].State != WorkerDead {
		t.Fatalf("state = %q, want dead", sts[0].State)
	}
	if sts[0].Restarts != 3 {
		t.Fatalf("restarts = %d, want 3 (the crash-loop threshold)", sts[0].Restarts)
	}
	// A dead name may be restarted explicitly (operator intervention).
	if err := s.Start(WorkerSpec{Name: "w", Command: []string{"/bin/sh", "-c", "sleep 60"}}); err != nil {
		t.Fatalf("restarting a dead worker: %v", err)
	}
	waitState(t, states, WorkerUp, 5*time.Second)
}

// TestSupervisorStop: Stop terminates a running worker promptly and
// leaves it stopped (no respawn), and a duplicate Start of a live name
// is refused.
func TestSupervisorStop(t *testing.T) {
	states, onChange := collectStates()
	s := NewSupervisor(SupervisorConfig{OnStateChange: onChange})
	defer s.Close()
	if err := s.Start(WorkerSpec{Name: "w", Command: []string{"/bin/sh", "-c", "sleep 60"}}); err != nil {
		t.Fatal(err)
	}
	waitState(t, states, WorkerUp, 5*time.Second)
	if err := s.Start(WorkerSpec{Name: "w", Command: []string{"/bin/sh", "-c", "sleep 60"}}); err == nil {
		t.Fatal("duplicate Start of a live worker succeeded")
	}
	done := make(chan error, 1)
	go func() { done <- s.Stop("w") }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Stop hung")
	}
	if st := s.States()[0].State; st != WorkerStopped {
		t.Fatalf("state = %q after Stop, want stopped", st)
	}
}
