package parallel

import (
	"context"
	"sync"

	"github.com/autonomizer/autonomizer/internal/auerr"
)

// ForCtx is the context-aware For: it cuts [0, n) into exactly the same
// chunks as For (the determinism contract — chunk boundaries depend only
// on n, grain and the configured width) but checks ctx before
// dispatching each chunk. On cancellation it stops scheduling new
// chunks, waits for the in-flight ones to finish, and returns an error
// wrapping auerr.ErrCanceled and ctx's cause. Chunks that did run
// produced exactly the bytes the sequential execution would have — work
// already completed is preserved, never half-written.
//
// A nil error means every chunk ran. Panics in any chunk resurface on
// the calling goroutine, as with For.
func ForCtx(ctx context.Context, n, grain int, fn func(lo, hi int)) error {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if ctx.Err() != nil {
		return auerr.Canceled(ctx)
	}
	if grain < 1 {
		grain = 1
	}
	w := Workers()
	if w <= 1 || n <= grain {
		fn(0, n)
		return nil
	}
	chunks := (n + grain - 1) / grain
	if chunks > w {
		chunks = w
	}
	if chunks <= 1 {
		fn(0, n)
		return nil
	}
	ensurePool(chunks - 1)
	var wg sync.WaitGroup
	var pnc panicBox
	canceled := false
	base, rem := n/chunks, n%chunks
	lo := 0
	for c := 0; c < chunks; c++ {
		hi := lo + base
		if c < rem {
			hi++
		}
		if ctx.Err() != nil {
			canceled = true
			break
		}
		wg.Add(1)
		t := task{fn: fn, lo: lo, hi: hi, wg: &wg, pnc: &pnc}
		if c == chunks-1 {
			t.run()
		} else {
			select {
			case taskQueue <- t:
			default:
				t.run()
			}
		}
		lo = hi
	}
	wg.Wait()
	pnc.rethrow()
	if canceled {
		return auerr.Canceled(ctx)
	}
	return nil
}

// RunCtx executes the functions, possibly concurrently, stopping the
// dispatch of not-yet-started functions when ctx is canceled. Functions
// already started run to completion; the returned error reports whether
// any were skipped (wrapping auerr.ErrCanceled) or nil if all ran.
func RunCtx(ctx context.Context, fns ...func()) error {
	return ForCtx(ctx, len(fns), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fns[i]()
		}
	})
}
