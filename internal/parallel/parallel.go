// Package parallel provides the shared worker pool behind Autonomizer's
// parallel execution layer. The paper's runtime spends nearly all of its
// time inside model training and query calls (au_NN / au_write_back
// dominate its Tables 2–3); our from-scratch nn/tensor substitute runs
// those kernels on this pool so the hot path scales with the machine
// instead of pinning one core.
//
// Design:
//
//   - One process-wide pool of helper goroutines, created lazily on the
//     first parallel call. Tasks are submitted non-blocking; when every
//     helper is busy (or the pool is empty on a single-core machine) the
//     submitting goroutine runs the task inline, which makes nested
//     parallel calls deadlock-free by construction.
//
//   - The *configured width* (Workers) and the *physical pool* are
//     deliberately distinct. Width controls how a range is sharded and is
//     part of the deterministic contract callers rely on; the pool only
//     controls how many shards physically run at once. Sharding writes to
//     disjoint output regions in every kernel built on this package, so
//     results are bit-identical at any width on any machine.
//
// The default width is GOMAXPROCS, overridable by the
// AUTONOMIZER_WORKERS environment variable and programmatically by
// SetWorkers.
package parallel

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/autonomizer/autonomizer/internal/obs"
)

// parseWorkers validates an AUTONOMIZER_WORKERS value: a positive
// decimal integer.
func parseWorkers(s string) (int, error) {
	n, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil {
		return 0, fmt.Errorf("parallel: AUTONOMIZER_WORKERS=%q is not an integer", s)
	}
	if n < 1 {
		return 0, fmt.Errorf("parallel: AUTONOMIZER_WORKERS=%d must be positive", n)
	}
	return n, nil
}

// defaultWorkers resolves the initial width: AUTONOMIZER_WORKERS when set
// to a positive integer, else GOMAXPROCS. A malformed value is rejected
// loudly (logged warning) rather than silently misconfiguring the pool.
func defaultWorkers() int {
	if s := os.Getenv("AUTONOMIZER_WORKERS"); s != "" {
		n, err := parseWorkers(s)
		if err != nil {
			obs.Logger().Warn("bad AUTONOMIZER_WORKERS; falling back to GOMAXPROCS",
				"err", err, "gomaxprocs", runtime.GOMAXPROCS(0))
			return runtime.GOMAXPROCS(0)
		}
		return n
	}
	return runtime.GOMAXPROCS(0)
}

var width atomic.Int64

func init() { width.Store(int64(defaultWorkers())) }

// Workers returns the configured parallel width. A width of 1 disables
// parallel execution everywhere.
func Workers() int { return int(width.Load()) }

// SetWorkers sets the parallel width and returns the previous value so
// tests and benchmarks can restore it with defer. n < 1 is clamped to 1.
func SetWorkers(n int) int {
	if n < 1 {
		n = 1
	}
	return int(width.Swap(int64(n)))
}

// panicBox collects the first panic raised by any shard of a parallel
// call, so it can be rethrown on the calling goroutine. Without this, a
// panic inside a pooled helper would crash the whole process with no
// chance for the runtime's recover boundary to turn it into an error.
type panicBox struct {
	mu  sync.Mutex
	val any
	set bool
}

func (b *panicBox) store(r any) {
	b.mu.Lock()
	if !b.set {
		b.val, b.set = r, true
	}
	b.mu.Unlock()
}

// rethrow re-raises the captured panic, if any, on the caller.
func (b *panicBox) rethrow() {
	if b.set {
		panic(b.val)
	}
}

// forState bundles the WaitGroup and panicBox a multi-chunk For shares
// with its shards. Both are referenced from pooled helper goroutines, so
// they escape to the heap; recycling the pair through a sync.Pool keeps
// steady-state parallel kernels at zero allocations per call. Reuse is
// safe because task.run signals the WaitGroup only after its panicBox
// store (deferred later, so run earlier), so by the time Wait returns no
// shard touches the state again.
type forState struct {
	wg  sync.WaitGroup
	pnc panicBox
}

var forStates = sync.Pool{New: func() any { return new(forState) }}

// poolMetrics holds the worker-pool instruments (tasks queued/running,
// chunk counts, queue wait). They are resolved lazily on the first
// multi-chunk For call after telemetry is enabled; while disabled,
// metrics() returns nil and every use below short-circuits, keeping the
// kernel hot path free of clock reads and allocations.
type poolMetrics struct {
	chunks  *obs.Counter
	running *obs.Gauge
	wait    *obs.Histogram
}

var pm atomic.Pointer[poolMetrics]

func metrics() *poolMetrics {
	if m := pm.Load(); m != nil {
		return m
	}
	reg := obs.Default()
	if reg == nil {
		return nil
	}
	m := &poolMetrics{
		chunks: reg.Counter("autonomizer_parallel_chunks_total",
			"Chunks dispatched by parallel For/Run calls.", nil),
		running: reg.Gauge("autonomizer_parallel_tasks_running",
			"Pool tasks currently executing (including inline-run chunks).", nil),
		wait: reg.Histogram("autonomizer_parallel_chunk_wait_seconds",
			"Time a queued chunk waited before a helper picked it up.", nil, nil),
	}
	reg.GaugeFunc("autonomizer_parallel_workers",
		"Configured parallel width (the sharding factor).", nil,
		func() float64 { return float64(Workers()) })
	reg.GaugeFunc("autonomizer_parallel_pool_size",
		"Helper goroutines in the process-wide pool.", nil,
		func() float64 { poolMu.Lock(); defer poolMu.Unlock(); return float64(poolSize) })
	reg.GaugeFunc("autonomizer_parallel_tasks_queued",
		"Chunks sitting in the task queue awaiting a helper.", nil,
		func() float64 { return float64(len(taskQueue)) })
	if !pm.CompareAndSwap(nil, m) {
		return pm.Load()
	}
	return m
}

// resetMetricsForTest drops the cached instruments so tests can attach
// a fresh registry.
func resetMetricsForTest() { pm.Store(nil) }

// task is one shard of a parallel-for: run fn over [lo, hi) and signal wg.
type task struct {
	fn     func(lo, hi int)
	lo, hi int
	wg     *sync.WaitGroup
	pnc    *panicBox
	m      *poolMetrics // nil while telemetry is disabled
	queued time.Time    // set when the task went through the queue
}

func (t task) run() {
	defer t.wg.Done()
	if t.m != nil {
		if !t.queued.IsZero() {
			t.m.wait.Observe(time.Since(t.queued).Seconds())
		}
		t.m.running.Add(1)
		defer t.m.running.Add(-1)
	}
	defer func() {
		if r := recover(); r != nil {
			t.pnc.store(r)
		}
	}()
	t.fn(t.lo, t.hi)
}

var (
	poolMu    sync.Mutex
	poolSize  int
	taskQueue = make(chan task, 256)
)

// ensurePool grows the helper pool to at least n goroutines. Helpers are
// cheap (blocked on a channel) and live for the process lifetime; the
// pool never shrinks.
func ensurePool(n int) {
	if n <= 0 {
		return
	}
	poolMu.Lock()
	for poolSize < n {
		poolSize++
		go func() {
			for t := range taskQueue {
				t.run()
			}
		}()
	}
	poolMu.Unlock()
}

// For splits [0, n) into at most Workers() contiguous chunks of at least
// grain elements each and runs fn on every chunk, returning when all
// chunks are done. Chunk boundaries depend only on n, grain and the
// configured width — never on scheduling — so kernels whose chunks write
// disjoint outputs are bit-identical at any width.
//
// Small ranges (n <= grain) and width 1 run inline with zero overhead,
// which is the sequential fallback below the size cutoff.
//
// fn escapes (shards run on pooled goroutines), so a closure literal at
// the call site heap-allocates its header on every call even when the
// range runs inline. Steady-state zero-allocation callers keep one
// persistent closure over mutable per-call fields (see
// tensor.ConvKernel) instead of building a fresh closure per call.
func For(n, grain int, fn func(lo, hi int)) {
	forChunks(n, grain, 1, fn)
}

// ForAligned is For with chunk boundaries rounded to multiples of align,
// the grain math for tiled kernels: a cache-blocked matmul that processes
// rows in register blocks of 4 wants every chunk (except the last) to
// hold a whole number of blocks, so no worker pays the ragged-edge scalar
// path in the middle of the range. Boundaries still depend only on
// (n, grain, align, width) — never on scheduling — so the determinism
// contract of For carries over unchanged.
func ForAligned(n, grain, align int, fn func(lo, hi int)) {
	if align <= 1 {
		align = 1
	}
	forChunks(n, grain, align, fn)
}

// forChunks is the shared sharding engine behind For and ForAligned:
// it computes chunk boundaries in units of align (1 for For) and scales
// them back to elements when building tasks, so the aligned form needs
// no wrapper closure around fn — one less per-call heap allocation.
func forChunks(n, grain, align int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	units, ugrain := n, grain
	if align > 1 {
		units = (n + align - 1) / align
		if ugrain = (grain + align - 1) / align; ugrain < 1 {
			ugrain = 1
		}
	}
	w := Workers()
	if w <= 1 || units <= ugrain {
		fn(0, n)
		return
	}
	chunks := (units + ugrain - 1) / ugrain
	if chunks > w {
		chunks = w
	}
	if chunks <= 1 {
		fn(0, n)
		return
	}
	ensurePool(chunks - 1)
	m := metrics()
	if m != nil {
		m.chunks.Add(uint64(chunks))
	}
	st := forStates.Get().(*forState)
	st.pnc.val, st.pnc.set = nil, false
	st.wg.Add(chunks)
	// Even split: the first (units % chunks) chunks get one extra unit.
	base, rem := units/chunks, units%chunks
	lo := 0
	for c := 0; c < chunks; c++ {
		hi := lo + base
		if c < rem {
			hi++
		}
		l, h := lo, hi
		if align > 1 {
			l *= align
			if h *= align; h > n {
				h = n
			}
		}
		t := task{fn: fn, lo: l, hi: h, wg: &st.wg, pnc: &st.pnc, m: m}
		if c == chunks-1 {
			// Run the last chunk on the calling goroutine: the caller
			// always contributes instead of idling at Wait.
			t.run()
		} else {
			if m != nil {
				t.queued = time.Now()
			}
			select {
			case taskQueue <- t:
			default:
				// Pool saturated (e.g. nested For): run inline rather
				// than block, which keeps nesting deadlock-free.
				t.queued = time.Time{}
				t.run()
			}
		}
		lo = hi
	}
	st.wg.Wait()
	// A panic in any shard resurfaces here, on the calling goroutine,
	// where the runtime's recover boundary can convert it to an error.
	// Read the box before recycling the state, then rethrow.
	r, set := st.pnc.val, st.pnc.set
	st.pnc.val = nil
	forStates.Put(st)
	if set {
		panic(r)
	}
}

// Run executes the given functions, possibly concurrently, returning when
// all have finished. It is For over the function list; ordering of side
// effects between functions is unspecified, so they must be independent.
func Run(fns ...func()) {
	For(len(fns), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fns[i]()
		}
	})
}
