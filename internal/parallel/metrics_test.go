package parallel

import (
	"strings"
	"sync/atomic"
	"testing"

	"github.com/autonomizer/autonomizer/internal/obs"
)

// TestPoolMetrics checks the worker-pool instruments: chunk counts,
// queue-wait observations and the running gauge settling back to zero.
func TestPoolMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	prev := obs.SetDefault(reg)
	resetMetricsForTest()
	defer func() {
		obs.SetDefault(prev)
		resetMetricsForTest()
	}()
	oldW := SetWorkers(4)
	defer SetWorkers(oldW)

	var n atomic.Int64
	For(1000, 10, func(lo, hi int) { n.Add(int64(hi - lo)) })
	if n.Load() != 1000 {
		t.Fatalf("For covered %d elements, want 1000", n.Load())
	}

	chunks := reg.Counter("autonomizer_parallel_chunks_total", "", nil).Value()
	if chunks != 4 {
		t.Fatalf("chunks = %d, want 4 (width 4)", chunks)
	}
	if g := reg.Gauge("autonomizer_parallel_tasks_running", "", nil).Value(); g != 0 {
		t.Fatalf("running gauge = %v after For returned, want 0", g)
	}
	// Queue-wait observations only cover chunks that actually queued; a
	// saturated pool runs inline, so count <= chunks - 1 (the caller's
	// chunk never queues).
	wait := reg.Histogram("autonomizer_parallel_chunk_wait_seconds", "", nil, nil)
	if wait.Count() > chunks-1 {
		t.Fatalf("wait observations = %d, want <= %d", wait.Count(), chunks-1)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"autonomizer_parallel_workers 4",
		"autonomizer_parallel_pool_size",
		"autonomizer_parallel_tasks_queued",
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestPoolMetricsDisabled pins the disabled fast path: no registry, no
// instruments, identical results.
func TestPoolMetricsDisabled(t *testing.T) {
	prev := obs.SetDefault(nil)
	resetMetricsForTest()
	defer func() {
		obs.SetDefault(prev)
		resetMetricsForTest()
	}()
	if m := metrics(); m != nil {
		t.Fatal("metrics() non-nil while telemetry disabled")
	}
	var n atomic.Int64
	For(100, 10, func(lo, hi int) { n.Add(int64(hi - lo)) })
	if n.Load() != 100 {
		t.Fatalf("For covered %d elements, want 100", n.Load())
	}
}
