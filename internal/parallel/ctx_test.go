package parallel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"github.com/autonomizer/autonomizer/internal/auerr"
)

func TestParseWorkers(t *testing.T) {
	cases := []struct {
		in   string
		want int
		ok   bool
	}{
		{"4", 4, true},
		{" 2 ", 2, true},
		{"1", 1, true},
		{"0", 0, false},
		{"-3", 0, false},
		{"eight", 0, false},
		{"4.5", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		n, err := parseWorkers(c.in)
		if c.ok && (err != nil || n != c.want) {
			t.Errorf("parseWorkers(%q) = (%d, %v), want (%d, nil)", c.in, n, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("parseWorkers(%q) accepted, want error", c.in)
		}
	}
}

func TestDefaultWorkersRejectsGarbageEnv(t *testing.T) {
	for _, bad := range []string{"banana", "-1", "0"} {
		t.Setenv("AUTONOMIZER_WORKERS", bad)
		if got := defaultWorkers(); got < 1 {
			t.Errorf("defaultWorkers() with AUTONOMIZER_WORKERS=%q = %d, want >= 1 (GOMAXPROCS fallback)", bad, got)
		}
	}
	t.Setenv("AUTONOMIZER_WORKERS", "3")
	if got := defaultWorkers(); got != 3 {
		t.Errorf("defaultWorkers() with AUTONOMIZER_WORKERS=3 = %d", got)
	}
}

func TestForCtxCompletesAllChunks(t *testing.T) {
	defer SetWorkers(SetWorkers(4))
	out := make([]int, 1000)
	if err := ForCtx(context.Background(), len(out), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = i * 2
		}
	}); err != nil {
		t.Fatalf("ForCtx: %v", err)
	}
	for i, v := range out {
		if v != i*2 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestForCtxCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := atomic.Int64{}
	err := ForCtx(ctx, 100, 1, func(lo, hi int) { ran.Add(int64(hi - lo)) })
	if !errors.Is(err, auerr.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCanceled wrapping context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Errorf("%d elements ran after pre-canceled context", ran.Load())
	}
}

func TestForCtxStopsSchedulingMidway(t *testing.T) {
	defer SetWorkers(SetWorkers(8))
	ctx, cancel := context.WithCancel(context.Background())
	ran := atomic.Int64{}
	// Cancel from inside the first chunk that runs: later chunks not yet
	// dispatched must be skipped, and completed work must be preserved.
	err := ForCtx(ctx, 8, 1, func(lo, hi int) {
		cancel()
		ran.Add(int64(hi - lo))
	})
	if err != nil && !errors.Is(err, auerr.ErrCanceled) {
		t.Fatalf("err = %v", err)
	}
	// At least one chunk ran (the canceling one); the test mainly
	// asserts no deadlock and a well-typed error.
	if ran.Load() == 0 {
		t.Error("no chunk ran at all")
	}
}

func TestForReraisesShardPanicOnCaller(t *testing.T) {
	defer SetWorkers(SetWorkers(4))
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic from shard was not rethrown on the caller")
		}
	}()
	For(64, 1, func(lo, hi int) {
		if lo == 0 {
			auerr.Failf("parallel test: shard invariant")
		}
	})
}

func TestRunCtx(t *testing.T) {
	var a, b atomic.Bool
	if err := RunCtx(context.Background(),
		func() { a.Store(true) },
		func() { b.Store(true) },
	); err != nil {
		t.Fatal(err)
	}
	if !a.Load() || !b.Load() {
		t.Error("not all functions ran")
	}
}
