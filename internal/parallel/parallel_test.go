package parallel

import (
	"sync/atomic"
	"testing"
)

// TestForCoversRange checks every element is visited exactly once for a
// spread of range sizes, grains and widths.
func TestForCoversRange(t *testing.T) {
	defer SetWorkers(SetWorkers(8))
	for _, w := range []int{1, 2, 3, 8, 13} {
		SetWorkers(w)
		for _, n := range []int{0, 1, 2, 7, 64, 1000} {
			for _, grain := range []int{1, 8, 1000} {
				hits := make([]int32, n)
				For(n, grain, func(lo, hi int) {
					if lo < 0 || hi > n || lo > hi {
						t.Errorf("w=%d n=%d grain=%d: bad chunk [%d,%d)", w, n, grain, lo, hi)
					}
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&hits[i], 1)
					}
				})
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("w=%d n=%d grain=%d: element %d visited %d times", w, n, grain, i, h)
					}
				}
			}
		}
	}
}

// TestForChunkBoundariesDeterministic checks that the chunk decomposition
// depends only on (n, grain, width) — the contract the deterministic
// kernels rely on.
func TestForChunkBoundariesDeterministic(t *testing.T) {
	defer SetWorkers(SetWorkers(4))
	collect := func() []int {
		var mu atomic.Int64
		bounds := make([]int, 101)
		For(100, 10, func(lo, hi int) {
			mu.Add(1)
			bounds[lo] = hi
		})
		return bounds
	}
	a, b := collect(), collect()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("chunking not deterministic at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestNestedForDoesNotDeadlock exercises For inside For at a width larger
// than the physical core count, the shape TrainBatch → MatMul produces.
func TestNestedForDoesNotDeadlock(t *testing.T) {
	defer SetWorkers(SetWorkers(8))
	var total atomic.Int64
	For(16, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			For(64, 4, func(l, h int) {
				total.Add(int64(h - l))
			})
		}
	})
	if total.Load() != 16*64 {
		t.Fatalf("nested For total = %d, want %d", total.Load(), 16*64)
	}
}

// TestSetWorkersClamp checks the floor of 1 and the restore idiom.
func TestSetWorkersClamp(t *testing.T) {
	prev := SetWorkers(-3)
	if Workers() != 1 {
		t.Errorf("SetWorkers(-3) left width %d", Workers())
	}
	SetWorkers(prev)
	if Workers() != prev {
		t.Errorf("restore failed: %d vs %d", Workers(), prev)
	}
}

// TestRun checks the convenience wrapper executes every function.
func TestRun(t *testing.T) {
	defer SetWorkers(SetWorkers(4))
	var a, b, c atomic.Int64
	Run(func() { a.Store(1) }, func() { b.Store(2) }, func() { c.Store(3) })
	if a.Load() != 1 || b.Load() != 2 || c.Load() != 3 {
		t.Error("Run skipped a function")
	}
}
