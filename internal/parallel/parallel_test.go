package parallel

import (
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
)

// TestForCoversRange checks every element is visited exactly once for a
// spread of range sizes, grains and widths.
func TestForCoversRange(t *testing.T) {
	defer SetWorkers(SetWorkers(8))
	for _, w := range []int{1, 2, 3, 8, 13} {
		SetWorkers(w)
		for _, n := range []int{0, 1, 2, 7, 64, 1000} {
			for _, grain := range []int{1, 8, 1000} {
				hits := make([]int32, n)
				For(n, grain, func(lo, hi int) {
					if lo < 0 || hi > n || lo > hi {
						t.Errorf("w=%d n=%d grain=%d: bad chunk [%d,%d)", w, n, grain, lo, hi)
					}
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&hits[i], 1)
					}
				})
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("w=%d n=%d grain=%d: element %d visited %d times", w, n, grain, i, h)
					}
				}
			}
		}
	}
}

// TestForChunkBoundariesDeterministic checks that the chunk decomposition
// depends only on (n, grain, width) — the contract the deterministic
// kernels rely on.
func TestForChunkBoundariesDeterministic(t *testing.T) {
	defer SetWorkers(SetWorkers(4))
	collect := func() []int {
		var mu atomic.Int64
		bounds := make([]int, 101)
		For(100, 10, func(lo, hi int) {
			mu.Add(1)
			bounds[lo] = hi
		})
		return bounds
	}
	a, b := collect(), collect()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("chunking not deterministic at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestNestedForDoesNotDeadlock exercises For inside For at a width larger
// than the physical core count, the shape TrainBatch → MatMul produces.
func TestNestedForDoesNotDeadlock(t *testing.T) {
	defer SetWorkers(SetWorkers(8))
	var total atomic.Int64
	For(16, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			For(64, 4, func(l, h int) {
				total.Add(int64(h - l))
			})
		}
	})
	if total.Load() != 16*64 {
		t.Fatalf("nested For total = %d, want %d", total.Load(), 16*64)
	}
}

// TestSetWorkersClamp checks the floor of 1 and the restore idiom.
func TestSetWorkersClamp(t *testing.T) {
	prev := SetWorkers(-3)
	if Workers() != 1 {
		t.Errorf("SetWorkers(-3) left width %d", Workers())
	}
	SetWorkers(prev)
	if Workers() != prev {
		t.Errorf("restore failed: %d vs %d", Workers(), prev)
	}
}

// TestRun checks the convenience wrapper executes every function.
func TestRun(t *testing.T) {
	defer SetWorkers(SetWorkers(4))
	var a, b, c atomic.Int64
	Run(func() { a.Store(1) }, func() { b.Store(2) }, func() { c.Store(3) })
	if a.Load() != 1 || b.Load() != 2 || c.Load() != 3 {
		t.Error("Run skipped a function")
	}
}

// TestForAligned checks the tiled-grain variant: every chunk boundary
// except the final hi lands on a multiple of align, the chunks tile
// [0, n) exactly, and boundaries are identical across repeated calls
// (the determinism contract the blocked kernels shard under).
func TestForAligned(t *testing.T) {
	defer SetWorkers(SetWorkers(8))
	for _, tc := range []struct{ n, grain, align int }{
		{100, 10, 4}, {97, 5, 4}, {16, 1, 4}, {3, 1, 4}, {0, 1, 4}, {64, 8, 1},
	} {
		collect := func() [][2]int {
			var mu sync.Mutex
			var chunks [][2]int
			ForAligned(tc.n, tc.grain, tc.align, func(lo, hi int) {
				mu.Lock()
				chunks = append(chunks, [2]int{lo, hi})
				mu.Unlock()
			})
			sort.Slice(chunks, func(i, j int) bool { return chunks[i][0] < chunks[j][0] })
			return chunks
		}
		chunks := collect()
		next := 0
		for _, c := range chunks {
			if c[0] != next {
				t.Fatalf("n=%d: gap/overlap at %d (chunk %v)", tc.n, next, c)
			}
			if tc.align > 1 && c[0]%tc.align != 0 {
				t.Errorf("n=%d: chunk lo %d not aligned to %d", tc.n, c[0], tc.align)
			}
			if tc.align > 1 && c[1] != tc.n && c[1]%tc.align != 0 {
				t.Errorf("n=%d: interior chunk hi %d not aligned to %d", tc.n, c[1], tc.align)
			}
			next = c[1]
		}
		if next != tc.n {
			t.Fatalf("n=%d: chunks end at %d", tc.n, next)
		}
		if again := collect(); !reflect.DeepEqual(chunks, again) {
			t.Errorf("n=%d: chunk boundaries changed between calls: %v vs %v", tc.n, chunks, again)
		}
	}
}
