#!/usr/bin/env bash
# check_fleet.sh — the fleet smoke gate (DESIGN.md §5i).
#
# Stands up an aufleet supervisor + router with 3 spawned auserve
# workers, then proves the sharded-fleet contract end to end:
#
#   - the router's /healthz goes deep-ready once backends are probed up
#   - a snapshot POSTed to the router is shipped to exactly the
#     ring-assigned backend (placements in /statusz)
#   - predictions through the router answer and stay bit-identical
#   - SIGKILL of the owning backend costs ZERO failed requests while a
#     concurrent client load runs (router-side failover + re-ship)
#   - the supervisor restarts the killed worker and the router's health
#     loop re-admits it (live_backends back to 3, restarts >= 1)
#   - /statusz aggregates per-backend documents into one fleet posture
#
# Usage: check_fleet.sh AUFLEET_BIN AUSERVE_BIN
set -euo pipefail

AUFLEET="${1:?usage: check_fleet.sh AUFLEET_BIN AUSERVE_BIN}"
AUSERVE="${2:?usage: check_fleet.sh AUFLEET_BIN AUSERVE_BIN}"
BASE="http://127.0.0.1:8090"
PORT_BASE=8100
TRIES="${TRIES:-60}"
CLIENTS="${CLIENTS:-8}"
PER_CLIENT="${PER_CLIENT:-40}"
WORK=$(mktemp -d /tmp/fleet-gate.XXXXXX)

note() { echo "fleet gate: $*"; }
die()  { echo "FAIL: $*" >&2; exit 1; }

cleanup() {
    if [ -f "$WORK/aufleet.pid" ]; then
        kill "$(cat "$WORK/aufleet.pid")" 2>/dev/null || true
    fi
    # The supervisor SIGTERMs its workers on shutdown; sweep stragglers.
    sleep 1
    pkill -f "fleet-demo-.*\.ausn" 2>/dev/null || true
}
trap cleanup EXIT

# Each worker trains the seeded demo model at startup (bit-identical
# weights in every process) and exports its own snapshot file.
"$AUFLEET" -addr 127.0.0.1:8090 -spawn 3 -port-base "$PORT_BASE" \
    -worker "$AUSERVE -demo -snapshot $WORK/fleet-demo-{index}.ausn -addr {addr}" \
    -health-interval 100ms -log-format json \
    > "$WORK/aufleet.out" 2> "$WORK/aufleet.err" &
echo $! > "$WORK/aufleet.pid"

# Router liveness, then deep readiness (needs >=1 live backend).
for i in $(seq 1 "$TRIES"); do
    curl -fsS "$BASE/healthz?deep=1" >/dev/null 2>&1 && break
    [ "$i" -eq "$TRIES" ] && die "router never went deep-ready"
    sleep 0.5
done
note "router deep-ready"

# All three workers must come up (the demo model is listed fleet-wide).
for i in $(seq 1 "$TRIES"); do
    live=$(curl -fsS "$BASE/statusz" | python3 -c 'import json,sys; print(json.load(sys.stdin)["live_backends"])' 2>/dev/null || echo 0)
    [ "$live" = "3" ] && break
    [ "$i" -eq "$TRIES" ] && die "never saw 3 live backends (last: $live)"
    sleep 0.5
done
note "3/3 backends live"

curl -fsS "$BASE/v1/models" | grep -q '"name":"demo"' || die "/v1/models does not list demo fleet-wide"

# Install via the router: POST a snapshot image, which the router must
# store and ship to the ring-assigned owner.
[ -s "$WORK/fleet-demo-0.ausn" ] || die "worker 0 never exported its snapshot"
out=$(curl -fsS -X POST --data-binary "@$WORK/fleet-demo-0.ausn" "$BASE/v1/snapshot")
grep -q '"models":1' <<<"$out" || die "router snapshot install answered: $out"

owner=$(curl -fsS "$BASE/statusz" | python3 -c 'import json,sys; print(json.load(sys.stdin)["placements"].get("demo",""))')
[ -n "$owner" ] || die "router /statusz records no placement for demo"
note "demo installed via router, placed on $owner"

# Baseline prediction through the router.
req='{"model":"demo","input":[0.1,0.2,0.3,0.4]}'
baseline=$(curl -fsS -X POST "$BASE/v1/predict" -H 'Content-Type: application/json' -d "$req")
grep -q '"output":\[' <<<"$baseline" || die "bad baseline predict answer: $baseline"

# Typed errors cross the router: unknown model is a classed 404.
code=$(curl -s -o "$WORK/err.json" -w '%{http_code}' -X POST "$BASE/v1/predict" \
    -H 'Content-Type: application/json' -d '{"model":"ghost","input":[1]}')
[ "$code" = "404" ] || die "unknown model through router answered HTTP $code, want 404"
grep -q '"class":"unknown_model"' "$WORK/err.json" || die "router 404 not classed: $(cat "$WORK/err.json")"

# SIGKILL the owning backend while concurrent clients hammer the
# router. The fleet contract: zero failed requests, all answers
# bit-identical to the baseline.
owner_port=${owner##*:}
note "driving $CLIENTS clients x $PER_CLIENT requests; SIGKILLing owner (port $owner_port) mid-run"
(
    sleep 0.3
    pkill -KILL -f -- "-addr 127.0.0.1:$owner_port" || note "WARN: no process matched owner port"
) &
killer=$!
clients=()
for c in $(seq 1 "$CLIENTS"); do
    (
        for r in $(seq 1 "$PER_CLIENT"); do
            got=$(curl -fsS -X POST "$BASE/v1/predict" -H 'Content-Type: application/json' -d "$req") \
                || { echo "request failed (client $c round $r)" >> "$WORK/failures"; continue; }
            [ "$got" = "$baseline" ] || echo "answer drifted (client $c round $r): $got" >> "$WORK/failures"
        done
    ) &
    clients+=($!)
done
# Wait on the client PIDs only — a bare `wait` would also wait on the
# aufleet server job, which never exits.
wait "${clients[@]}" || true
[ -s "$WORK/failures" ] && die "requests failed across the kill: $(head -5 "$WORK/failures")"
note "zero failed requests across backend SIGKILL ($((CLIENTS * PER_CLIENT)) total), answers bit-identical"

# Recovery: the supervisor restarts the worker; the router re-admits it.
for i in $(seq 1 "$TRIES"); do
    summary=$(curl -fsS "$BASE/statusz" | python3 -c '
import json, sys
st = json.load(sys.stdin)
restarts = sum(w.get("restarts", 0) for w in st.get("workers", []))
print(st["live_backends"], restarts)
' 2>/dev/null || echo "0 0")
    live=${summary% *}; restarts=${summary#* }
    if [ "$live" = "3" ] && [ "$restarts" -ge 1 ]; then
        note "supervisor restarted the worker (restarts=$restarts); 3/3 backends live again"
        break
    fi
    [ "$i" -eq "$TRIES" ] && die "fleet never recovered (live=$live restarts=$restarts)"
    sleep 0.5
done

# The fleet still answers identically after the churn.
got=$(curl -fsS -X POST "$BASE/v1/predict" -H 'Content-Type: application/json' -d "$req")
[ "$got" = "$baseline" ] || die "prediction changed across kill/recovery: $got vs $baseline"

# /statusz aggregation: three per-backend documents embedded, each with
# its own models table, plus the supervisor's worker states.
curl -fsS "$BASE/statusz" | python3 -c '
import json, sys
st = json.load(sys.stdin)
fleet = st["fleet"]
assert len(fleet) == 3, f"fleet rows: {len(fleet)}"
ups = [b for b in fleet if b["up"]]
assert len(ups) == 3, f"live rows: {len(ups)}"
embedded = [b for b in ups if b.get("statusz")]
assert len(embedded) == 3, f"embedded statusz docs: {len(embedded)}"
for b in embedded:
    assert "models" in b["statusz"], f"backend {b['url']} statusz has no models table"
workers = st.get("workers", [])
assert len(workers) == 3, f"supervised workers: {len(workers)}"
assert all(w["state"] == "up" for w in workers), workers
print(f"statusz aggregation ok: {len(embedded)} backend docs, {len(workers)} workers up")
' || die "/statusz aggregation check failed"

wait "$killer" 2>/dev/null || true
echo "fleet gate: all checks passed on $BASE"
