#!/usr/bin/env bash
# check_kernels.sh — the kernel-speedup gate for the default build.
#
# ROADMAP: the blocked matmul must beat the naive reference on the
# DEFAULT build (no GOAMD64 flags), because that is what `go build`
# gives every user. The init-time CPU-feature dispatch (tensor/dispatch.go)
# selects the AVX2+FMA assembly kernels at package init when the host
# supports them, so the default build should see the same speedups as a
# GOAMD64=v3 build. This gate fails if the blocked/naive ratio at
# 192x192 (single-core) drops below a floor — e.g. if the dispatch
# silently regresses to the generic kernels on a machine that has AVX2,
# or a kernel change loses the advantage.
#
# The floor is deliberately below the observed ~7x with the assembly
# kernels but above the ~1.2x the generic path manages, so it trips on
# "dispatch broke", not on benchmark noise. On hosts without AVX2 the
# generic kernels cannot reach the floor; the gate detects the active
# kernel via AUTONOMIZER_KERNEL-aware TestKernelSelected logging and
# applies the generic floor instead. All floors are overridable:
#   MIN_SPEEDUP_192         (default 3.0, accelerated kernels)
#   MIN_SPEEDUP_192_GENERIC (default 0.9, generic fallback)
#   MIN_CONV_SPEEDUP        (default 2.0, accelerated kernels)
#   MIN_CONV_SPEEDUP_GENERIC (default 1.1, generic fallback)
#
# The conv gate compares the implicit-GEMM convolution (gather fused
# into GEBP packing, DESIGN.md §5j) against the materialized im2col
# lowering on the same geometry, forward and backward, inside one
# benchmark process — a ratio, so host-speed jitter cancels. The fusion
# helps the generic kernels too (it removes the column matrix and its
# re-pack), hence a floor above 1x even without AVX2.
set -euo pipefail

cd "$(dirname "$0")/.."

MIN_SPEEDUP_192="${MIN_SPEEDUP_192:-3.0}"
MIN_SPEEDUP_192_GENERIC="${MIN_SPEEDUP_192_GENERIC:-0.9}"
MIN_CONV_SPEEDUP="${MIN_CONV_SPEEDUP:-2.0}"
MIN_CONV_SPEEDUP_GENERIC="${MIN_CONV_SPEEDUP_GENERIC:-1.1}"

# -count=1 defeats the test cache: the dispatch reads AUTONOMIZER_KERNEL
# at package init, before the test runner's env tracking starts, so a
# cached log can report the wrong kernel.
kernel=$(go test -count=1 ./internal/tensor/ -run TestKernelSelected -v 2>/dev/null \
    | awk -F'active kernel: ' '/active kernel:/ { split($2, a, " "); print a[1]; exit }')
if [ -z "$kernel" ]; then
    echo "FAIL: could not determine the active kernel implementation" >&2
    exit 1
fi

floor="$MIN_SPEEDUP_192"
conv_floor="$MIN_CONV_SPEEDUP"
if [ "$kernel" = "generic" ]; then
    floor="$MIN_SPEEDUP_192_GENERIC"
    conv_floor="$MIN_CONV_SPEEDUP_GENERIC"
fi
echo "kernel gate: active kernel '$kernel', matmul floor $floor, conv floor $conv_floor"

out=$(go test -bench 'BenchmarkKernels/MatMul(Naive|Blocked)192$' \
    -benchtime 5x -run '^$' ./internal/bench/)
printf '%s\n' "$out"

naive=$(printf '%s\n' "$out" | awk '$1 ~ /MatMulNaive192(-|$)/ { print $3; exit }')
blocked=$(printf '%s\n' "$out" | awk '$1 ~ /MatMulBlocked192(-|$)/ { print $3; exit }')
if [ -z "$naive" ] || [ -z "$blocked" ]; then
    echo "FAIL: missing benchmark output (naive='$naive' blocked='$blocked')" >&2
    exit 1
fi

awk -v naive="$naive" -v blocked="$blocked" -v floor="$floor" -v kernel="$kernel" 'BEGIN {
    speedup = naive / blocked
    printf "kernel gate: blocked/naive speedup at 192x192 = %.2fx (floor %.1fx, kernel %s)\n",
        speedup, floor, kernel
    if (speedup < floor) {
        printf "FAIL: default-build speedup %.2fx below floor %.1fx.\n", speedup, floor > "/dev/stderr"
        print "The init-time kernel dispatch may have regressed (see internal/tensor/dispatch.go)." > "/dev/stderr"
        exit 1
    }
}'

# Conv gate: implicit-GEMM vs materialized im2col, forward and backward.
conv_out=$(go test -bench 'BenchmarkKernels/Conv(Forward|Backward)(Im2Col|Implicit)$' \
    -benchtime 50x -run '^$' ./internal/bench/)
printf '%s\n' "$conv_out"

fwd_ref=$(printf '%s\n' "$conv_out" | awk '$1 ~ /ConvForwardIm2Col(-|$)/ { print $3; exit }')
fwd_imp=$(printf '%s\n' "$conv_out" | awk '$1 ~ /ConvForwardImplicit(-|$)/ { print $3; exit }')
bwd_ref=$(printf '%s\n' "$conv_out" | awk '$1 ~ /ConvBackwardIm2Col(-|$)/ { print $3; exit }')
bwd_imp=$(printf '%s\n' "$conv_out" | awk '$1 ~ /ConvBackwardImplicit(-|$)/ { print $3; exit }')
if [ -z "$fwd_ref" ] || [ -z "$fwd_imp" ] || [ -z "$bwd_ref" ] || [ -z "$bwd_imp" ]; then
    echo "FAIL: missing conv benchmark output" >&2
    exit 1
fi

awk -v fr="$fwd_ref" -v fi="$fwd_imp" -v br="$bwd_ref" -v bi="$bwd_imp" \
    -v floor="$conv_floor" -v kernel="$kernel" 'BEGIN {
    fwd = fr / fi
    bwd = br / bi
    printf "kernel gate: implicit-GEMM conv speedup forward %.2fx backward %.2fx (floor %.1fx, kernel %s)\n",
        fwd, bwd, floor, kernel
    if (fwd < floor || bwd < floor) {
        printf "FAIL: conv speedup (fwd %.2fx, bwd %.2fx) below floor %.1fx.\n", fwd, bwd, floor > "/dev/stderr"
        print "The implicit-GEMM packers may have regressed (see internal/tensor/convgemm.go)." > "/dev/stderr"
        exit 1
    }
}'
