#!/usr/bin/env bash
# check_allocs.sh — the zero-allocation gate for the NN hot path.
#
# DESIGN.md §5e: after warm-up, the steady-state inference and training
# paths must not touch the heap. This script runs the end-to-end
# sub-benchmarks of BenchmarkKernels with -benchmem and fails if any
# allocs/op figure exceeds its budget:
#
#   NetworkForward  0  (DNN 64-[128,64]-16 Forward)
#   ServedPredict   0  (compiled plan PredictInto, the serving engine's
#                       path)
#   CNNForward      0  (compiled CNN plan — sequential packed ops, no
#                       parallel-dispatch closures)
#   CNNForwardTrain 0  (uncompiled training forward — the implicit-GEMM
#                       ConvKernel dispatches persistent shard closures
#                       and draws every transient from the scratch arena)
#   TrainBatch      8  (0 on one core; on multicore the data-parallel
#                       batch path pays a few WaitGroup/closure headers
#                       per parallel.Run call — fixed-size dispatch
#                       cost, never data-sized traffic)
#
# Budgets are overridable (MAX_ALLOCS_<NAME>) so a future PR can land a
# conscious regression without rewriting the gate.
set -euo pipefail

cd "$(dirname "$0")/.."

MAX_ALLOCS_NETWORKFORWARD="${MAX_ALLOCS_NETWORKFORWARD:-0}"
MAX_ALLOCS_SERVEDPREDICT="${MAX_ALLOCS_SERVEDPREDICT:-0}"
MAX_ALLOCS_CNNFORWARD="${MAX_ALLOCS_CNNFORWARD:-0}"
MAX_ALLOCS_CNNFORWARDTRAIN="${MAX_ALLOCS_CNNFORWARDTRAIN:-0}"
MAX_ALLOCS_TRAINBATCH="${MAX_ALLOCS_TRAINBATCH:-8}"

out=$(go test -bench 'BenchmarkKernels/(NetworkForward|ServedPredict|CNNForward|CNNForwardTrain|TrainBatch)$' \
    -benchmem -benchtime 100x -run '^$' ./internal/bench/)
printf '%s\n' "$out"

fail=0
check() {
    local name="$1" budget="$2"
    local allocs
    allocs=$(printf '%s\n' "$out" | awk -v n="$name" \
        '$1 ~ "BenchmarkKernels/" n "(-|$)" { print $(NF-1); exit }')
    if [ -z "$allocs" ]; then
        echo "FAIL: no benchmark output for $name" >&2
        fail=1
        return
    fi
    echo "allocs gate: $name = $allocs allocs/op (budget $budget)"
    if [ "$allocs" -gt "$budget" ]; then
        echo "FAIL: $name allocates $allocs/op, budget $budget." >&2
        echo "The steady state must reuse layer scratch (DESIGN.md §5e)." >&2
        fail=1
    fi
}

check NetworkForward "$MAX_ALLOCS_NETWORKFORWARD"
check ServedPredict "$MAX_ALLOCS_SERVEDPREDICT"
check CNNForward "$MAX_ALLOCS_CNNFORWARD"
check CNNForwardTrain "$MAX_ALLOCS_CNNFORWARDTRAIN"
check TrainBatch "$MAX_ALLOCS_TRAINBATCH"
exit "$fail"
