#!/usr/bin/env bash
# check_panics.sh — the panic-free gate for the runtime hot path.
#
# DESIGN.md §5b: internal/core, internal/nn and internal/rl must not
# call panic() outside test files. Internal invariant violations go
# through auerr.Failf (recovered into ErrInvariant errors at the core
# API boundary), so new literal panics in these trees are regressions.
#
# A small allowlist budget (MAX_PANICS, default 10) exists so a future
# PR can consciously land a transitional panic without rewriting this
# gate; it is currently unused (the budget in force is effectively 0).
set -euo pipefail

cd "$(dirname "$0")/.."

MAX_PANICS="${MAX_PANICS:-10}"
GATED_DIRS=(internal/core internal/nn internal/rl)

found=0
hits=""
for dir in "${GATED_DIRS[@]}"; do
    while IFS= read -r file; do
        # Match panic as a call, not identifiers like panicBox or
        # comments mentioning the word mid-sentence.
        matches=$(grep -nE '(^|[^[:alnum:]_."])panic\(' "$file" | grep -v '^\s*//' || true)
        if [ -n "$matches" ]; then
            n=$(printf '%s\n' "$matches" | wc -l)
            found=$((found + n))
            hits+=$(printf '%s\n' "$matches" | sed "s|^|$file:|")$'\n'
        fi
    done < <(find "$dir" -name '*.go' ! -name '*_test.go')
done

echo "panic gate: $found literal panic call(s) in ${GATED_DIRS[*]} (budget $MAX_PANICS)"
if [ -n "$hits" ]; then
    printf '%s' "$hits"
fi
if [ "$found" -gt "$MAX_PANICS" ]; then
    echo "FAIL: panic count $found exceeds budget $MAX_PANICS." >&2
    echo "Route invariants through auerr.Failf (see DESIGN.md §5b)." >&2
    exit 1
fi
