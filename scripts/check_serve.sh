#!/usr/bin/env bash
# check_serve.sh — the serving smoke gate.
#
# Drives a running auserve instance (default http://127.0.0.1:8080,
# started with -demo so the "demo" model is installed) through the
# whole serving contract: health, model listing, JSON and error
# answers on /v1/predict and /v1/act, load shedding classification,
# atomic hot reload with a version bump, and — the point of the
# subsystem — evidence in the batch-size histogram that concurrent
# clients actually coalesced into multi-request batches (DESIGN.md
# §5d). Run it against `auserve -demo [-snapshot f]`.
set -euo pipefail

BASE="${1:-http://127.0.0.1:8080}"
TRIES="${TRIES:-30}"
CLIENTS="${CLIENTS:-16}"
PER_CLIENT="${PER_CLIENT:-50}"

for i in $(seq 1 "$TRIES"); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then
        break
    fi
    if [ "$i" -eq "$TRIES" ]; then
        echo "FAIL: $BASE/healthz did not answer after $TRIES attempts" >&2
        exit 1
    fi
    sleep 1
done

fail=0
note() { echo "serve gate: $*"; }
die() {
    echo "FAIL: $*" >&2
    fail=1
}

# The demo model is listed with its sizes.
models=$(curl -fsS "$BASE/v1/models")
grep -q '"name":"demo"' <<<"$models" || die "/v1/models does not list the demo model: $models"
version0=$(sed -n 's/.*"version":\([0-9]*\).*/\1/p' <<<"$models")

# One JSON predict answers with a 2-vector.
out=$(curl -fsS -X POST "$BASE/v1/predict" \
    -H 'Content-Type: application/json' \
    -d '{"model":"demo","input":[0.1,0.2,0.3,0.4]}')
grep -qE '"output":\[-?[0-9.eE+-]+,-?[0-9.eE+-]+\]' <<<"$out" || die "bad predict answer: $out"

# The RL action endpoint answers with a discrete action.
act=$(curl -fsS -X POST "$BASE/v1/act" \
    -H 'Content-Type: application/json' \
    -d '{"model":"demo","state":[0.9,0.1,0.5,0.5]}')
grep -qE '"action":[0-9]+' <<<"$act" || die "bad act answer: $act"

# Typed errors cross the wire: unknown model is a classed 404.
code=$(curl -s -o /tmp/serve_err.json -w '%{http_code}' -X POST "$BASE/v1/predict" \
    -H 'Content-Type: application/json' -d '{"model":"ghost","input":[1,2,3,4]}')
[ "$code" = "404" ] || die "unknown model answered HTTP $code, want 404"
grep -q '"class":"unknown_model"' /tmp/serve_err.json || die "unknown model error not classed: $(cat /tmp/serve_err.json)"

# Malformed input is a classed 400.
code=$(curl -s -o /tmp/serve_err.json -w '%{http_code}' -X POST "$BASE/v1/predict" \
    -H 'Content-Type: application/json' -d '{"model":"demo","input":[1]}')
[ "$code" = "400" ] || die "wrong-size input answered HTTP $code, want 400"
grep -q '"class":"spec_invalid"' /tmp/serve_err.json || die "wrong-size input not classed: $(cat /tmp/serve_err.json)"

# Concurrent clients hammer predict so the micro-batcher has company to
# coalesce; each client issues PER_CLIENT sequential requests.
note "driving $CLIENTS concurrent clients x $PER_CLIENT requests"
for c in $(seq 1 "$CLIENTS"); do
    (
        for _ in $(seq 1 "$PER_CLIENT"); do
            curl -fsS -X POST "$BASE/v1/predict" \
                -H 'Content-Type: application/json' \
                -d '{"model":"demo","input":[0.5,0.25,0.125,0.0625]}' >/dev/null
        done
    ) &
done
wait

# The batch-size histogram must show real coalescing: batches of more
# than one request. le="1" counts the singleton batches; the total
# count minus that is the multi-request batches.
metrics=$(curl -fsS "$BASE/metrics")
grep -q '^autonomizer_serve_batch_size_bucket' <<<"$metrics" || die "/metrics missing the batch-size histogram"
singles=$(sed -n 's/^autonomizer_serve_batch_size_bucket{le="1"} \([0-9]*\)$/\1/p' <<<"$metrics")
total=$(sed -n 's/^autonomizer_serve_batch_size_count \([0-9]*\)$/\1/p' <<<"$metrics")
if [ -z "$singles" ] || [ -z "$total" ]; then
    die "could not read batch-size histogram (singles='$singles' total='$total')"
elif [ "$total" -le "$singles" ]; then
    die "no multi-request batches observed (total=$total singleton=$singles) — batching is not coalescing"
else
    note "coalescing confirmed: $((total - singles)) of $total batches had >1 request"
fi
grep -qE '^autonomizer_serve_queue_depth\{model="demo"\} [0-9]' <<<"$metrics" || die "/metrics missing the queue-depth gauge"
grep -qE '^autonomizer_serve_requests_total\{.*endpoint="predict".*\} [1-9]' <<<"$metrics" || die "/metrics missing predict request counter"

# Atomic hot reload: an empty-body reload pulls the fresh snapshot from
# the server's source (when started with -snapshot) and must bump the
# version while the server keeps answering; without a source it is a
# contract 400.
if reload=$(curl -fsS -X POST "$BASE/models/demo/reload" 2>/dev/null); then
    grep -qE '"version":[0-9]+' <<<"$reload" || die "bad reload answer: $reload"
    version1=$(sed -n 's/.*"version":\([0-9]*\).*/\1/p' <<<"$reload")
    if [ -n "$version0" ] && [ "$version1" -le "$version0" ]; then
        die "reload did not bump the version ($version0 -> $version1)"
    fi
    note "hot reload bumped demo to version $version1"
else
    # Without a snapshot source an empty-body reload is a 400 by contract.
    code=$(curl -s -o /tmp/serve_err.json -w '%{http_code}' -X POST "$BASE/models/demo/reload")
    [ "$code" = "400" ] || die "source-less reload answered HTTP $code, want 400"
    note "no snapshot source configured; source-less reload correctly rejected (400)"
fi

# The model still answers identically after the reload churn.
out2=$(curl -fsS -X POST "$BASE/v1/predict" \
    -H 'Content-Type: application/json' \
    -d '{"model":"demo","input":[0.1,0.2,0.3,0.4]}')
[ "$out" = "$out2" ] || die "prediction changed across reload: $out vs $out2"

if [ "$fail" -ne 0 ]; then
    echo "--- /metrics dump ---" >&2
    printf '%s\n' "$metrics" >&2
    exit 1
fi
echo "serve gate: all checks passed on $BASE"
