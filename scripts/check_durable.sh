#!/usr/bin/env bash
# check_durable.sh — the crash-recovery gate (DESIGN.md §5f).
#
# Drives the durable training pipeline through its whole contract:
#
#   1. an uninterrupted `train` run records the baseline final model;
#   2. a second run SIGKILLs itself mid-fit (deterministically, via
#      -crash-after-batches, after the Nth checkpoint is fsync'd) and
#      `resume` must finish it with BIT-IDENTICAL final parameters;
#   3. a torn tail — a record half-written at the moment of a crash —
#      must be truncated away on reopen, keeping the valid prefix;
#   4. mid-file corruption (a flipped byte inside a record that was once
#      durable) must be rejected loudly with the corrupt-store error,
#      never silently replayed.
#
# Usage: check_durable.sh [path-to-autonomizer-binary]
set -euo pipefail

BIN="${1:-/tmp/autonomizer}"
WORK="${WORK:-$(mktemp -d /tmp/durable-gate.XXXXXX)}"
EPOCHS=4 BATCH=8 EXAMPLES=128 # 16 minibatches/epoch, 64 total
CRASH_AT=23                   # SIGKILL mid-epoch-2, between batch boundaries

fail=0
note() { echo "durable gate: $*"; }
die() {
    echo "FAIL: $*" >&2
    fail=1
}

if [ ! -x "$BIN" ]; then
    echo "FAIL: autonomizer binary not found at $BIN (build it first)" >&2
    exit 1
fi

run_train() { # dir extra-flags...
    local dir="$1"
    shift
    "$BIN" -wal "$dir" -fit-epochs "$EPOCHS" -fit-batch "$BATCH" -fit-examples "$EXAMPLES" "$@" train
}

# --- 1. Baseline: uninterrupted run -----------------------------------
note "baseline uninterrupted run"
run_train "$WORK/base" >"$WORK/base.out" 2>"$WORK/base.err"
BASE_MODEL="$WORK/base/final-DurableNN.aum"
[ -s "$BASE_MODEL" ] || die "baseline run produced no final model"
BASE_SHA=$(sed -n 's/.*sha256=\([0-9a-f]*\)$/\1/p' "$WORK/base.out" | head -n1)
note "baseline sha256=$BASE_SHA"

# --- 2. SIGKILL mid-fit, then resume ----------------------------------
note "crash run: self-SIGKILL after checkpoint $CRASH_AT of 64"
set +e
run_train "$WORK/crash" -crash-after-batches "$CRASH_AT" >"$WORK/crash.out" 2>"$WORK/crash.err"
crash_rc=$?
set -e
# 137 = 128+SIGKILL when the shell reaps it; a plain sh may report 0 for
# a backgrounded wrapper, so gate on the absence of a final model too.
if [ "$crash_rc" -ne 137 ] && [ "$crash_rc" -ne 0 ]; then
    note "crash run exited rc=$crash_rc (expected SIGKILL/137)"
fi
[ ! -e "$WORK/crash/final-DurableNN.aum" ] || die "crashed run left a final model — it did not die mid-fit"
grep -q "SIGKILLing self" "$WORK/crash.err" || die "crash run never reached the kill point"

note "resuming crashed run"
"$BIN" -wal "$WORK/crash" resume >"$WORK/resume.out" 2>"$WORK/resume.err"
grep -q "resuming fit from checkpoint" "$WORK/resume.err" || die "resume did not pick up the checkpoint (re-ran from scratch?)"
CRASH_MODEL="$WORK/crash/final-DurableNN.aum"
[ -s "$CRASH_MODEL" ] || die "resume produced no final model"
if cmp -s "$BASE_MODEL" "$CRASH_MODEL"; then
    note "resume is bit-identical to the uninterrupted run"
else
    die "resumed final model differs from uninterrupted run (sha: $(sha256sum "$CRASH_MODEL" | cut -d' ' -f1) vs $BASE_SHA)"
fi

# --- 3. Torn tail: truncate mid-record, reopen must recover -----------
note "torn tail: truncating the newest queue segment mid-record"
QSEG=$(ls "$WORK/crash/queue"/wal-*.seg | sort | tail -n1)
size=$(stat -c %s "$QSEG")
truncate -s $((size - 3)) "$QSEG"
"$BIN" -wal "$WORK/crash" resume >"$WORK/torn.out" 2>"$WORK/torn.err"
grep -q "torn tail" "$WORK/torn.err" || die "torn tail was not detected/truncated on reopen"
# The dropped record was the completion; the re-completed fit must agree.
cmp -s "$BASE_MODEL" "$WORK/crash/final-DurableNN.aum" || die "re-completed model after torn-tail recovery differs from baseline"
note "torn tail truncated; prefix replayed; job re-completed identically"

# --- 4. Mid-file corruption: flip a durable byte, reopen must refuse --
note "mid-file corruption: flipping a byte inside the store journal"
SSEG=$(ls "$WORK/base/store"/wal-*.seg | sort | head -n1)
# Offset 34 lands inside the first record's body (16B segment header +
# 8B frame), with valid records after it: unambiguously fatal.
printf '\xff' | dd of="$SSEG" bs=1 seek=34 count=1 conv=notrunc status=none
set +e
"$BIN" -wal "$WORK/base" resume >"$WORK/corrupt.out" 2>"$WORK/corrupt.err"
corrupt_rc=$?
set -e
[ "$corrupt_rc" -ne 0 ] || die "reopen of a corrupted journal succeeded"
grep -q "corrupt store data" "$WORK/corrupt.err" || die "corruption rejected without the corrupt-store error class: $(tail -n2 "$WORK/corrupt.err")"
note "mid-file corruption rejected with the corrupt-store error"

if [ "$fail" -ne 0 ]; then
    echo "--- work dir kept at $WORK ---" >&2
    exit 1
fi
note "all checks passed (work dir $WORK)"
