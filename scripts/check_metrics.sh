#!/usr/bin/env bash
# check_metrics.sh — the telemetry smoke gate.
#
# Polls a running telemetry endpoint (default http://127.0.0.1:9090)
# until /metrics answers, then asserts the exposition carries the metric
# families the runtime contract promises (DESIGN.md §5c): per-primitive
# call counters and latency histograms, auerr-classed error counters,
# worker-pool gauges, db/ckpt activity, and the expvar mirror on
# /debug/vars. Run it against `autonomizer -telemetry :9090 serve`,
# whose workload exercises every primitive once (including one expected
# failure, so the error family is non-empty).
set -euo pipefail

BASE="${1:-http://127.0.0.1:9090}"
TRIES="${TRIES:-30}"

for i in $(seq 1 "$TRIES"); do
    if metrics=$(curl -fsS "$BASE/metrics" 2>/dev/null); then
        break
    fi
    if [ "$i" -eq "$TRIES" ]; then
        echo "FAIL: $BASE/metrics did not answer after $TRIES attempts" >&2
        exit 1
    fi
    sleep 1
done

fail=0
require() {
    if ! grep -qE "$1" <<<"$metrics"; then
        echo "FAIL: /metrics missing: $2 ($1)" >&2
        fail=1
    fi
}

# Per-primitive call counters and latency histograms (closed vocabulary).
for p in config extract serialize nn nnrl write_back checkpoint restore fit predict; do
    require "^autonomizer_core_primitive_calls_total\{primitive=\"$p\"\} [1-9]" "calls counter for $p"
    require "^autonomizer_core_primitive_duration_seconds_count\{primitive=\"$p\"\} [1-9]" "latency histogram for $p"
done
require '^autonomizer_core_primitive_duration_seconds_bucket\{.*le="\+Inf"\}' "cumulative +Inf bucket"

# auerr-classed error counters (the serve workload provokes one failure).
require '^autonomizer_core_primitive_errors_total\{class="[a-z_]+",primitive="[a-z_]+"\} [1-9]' "classed error counter"

# Training metrics.
require '^autonomizer_nn_fit_epochs_total [1-9]' "fit epoch counter"
require '^autonomizer_nn_fit_last_loss\{model=' "per-model fit loss gauge"
require '^autonomizer_nn_optimizer_steps_total\{optimizer=' "optimizer step counter"
require '^autonomizer_rl_train_steps_total' "rl train step counter"

# Worker-pool gauges.
require '^autonomizer_parallel_workers [0-9]' "parallel width gauge"
require '^autonomizer_parallel_pool_size [0-9]' "pool size gauge"
require '^autonomizer_parallel_tasks_queued [0-9]' "queued tasks gauge"
require '^autonomizer_parallel_tasks_running [0-9]' "running tasks gauge"

# Store and checkpoint activity.
require '^autonomizer_db_store_bytes [0-9]' "db store footprint gauge"
require '^autonomizer_db_appends_total [1-9]' "db append counter"
require '^autonomizer_ckpt_checkpoints_total [1-9]' "checkpoint counter"
require '^autonomizer_ckpt_restores_total [1-9]' "restore counter"

# The expvar mirror serves the same registry as JSON.
if ! curl -fsS "$BASE/debug/vars" | grep -q autonomizer_metrics; then
    echo "FAIL: /debug/vars missing the autonomizer_metrics key" >&2
    fail=1
fi

if [ "$fail" -ne 0 ]; then
    echo "--- /metrics dump ---" >&2
    printf '%s\n' "$metrics" >&2
    exit 1
fi
echo "metrics gate: all required families present on $BASE"
