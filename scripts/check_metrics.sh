#!/usr/bin/env bash
# check_metrics.sh — the telemetry smoke gate.
#
# Polls a running telemetry endpoint (default http://127.0.0.1:9090)
# until /metrics answers, then asserts the exposition carries the metric
# families the runtime contract promises (DESIGN.md §5c/§5h): per-
# primitive call counters, latency histograms and sliding-window
# quantile summaries, auerr-classed error counters, worker-pool gauges,
# db/ckpt activity, the expvar mirror on /debug/vars, the /statusz and
# /healthz deep-health surface, and that the whole exposition parses as
# well-formed Prometheus text (no duplicate HELP/TYPE, sane line
# grammar).
#
# Usage:
#   check_metrics.sh [BASE]          core mode: against `autonomizer -telemetry BASE serve`
#   check_metrics.sh BASE serve      serve mode: against a running auserve (asserts the
#                                    serving stage histograms, per-model latency quantiles
#                                    and the drift surface instead of the core families)
set -euo pipefail

BASE="${1:-http://127.0.0.1:9090}"
MODE="${2:-core}"
TRIES="${TRIES:-30}"

for i in $(seq 1 "$TRIES"); do
    if metrics=$(curl -fsS "$BASE/metrics" 2>/dev/null); then
        break
    fi
    if [ "$i" -eq "$TRIES" ]; then
        echo "FAIL: $BASE/metrics did not answer after $TRIES attempts" >&2
        exit 1
    fi
    sleep 1
done

fail=0
require() {
    if ! grep -qE "$1" <<<"$metrics"; then
        echo "FAIL: /metrics missing: $2 ($1)" >&2
        fail=1
    fi
}

if [ "$MODE" != "serve" ]; then
    # Per-primitive call counters, latency histograms and sliding-window
    # quantile summaries (closed vocabulary).
    for p in config extract serialize nn nnrl write_back checkpoint restore fit predict; do
        require "^autonomizer_core_primitive_calls_total\{primitive=\"$p\"\} [1-9]" "calls counter for $p"
        require "^autonomizer_core_primitive_duration_seconds_count\{primitive=\"$p\"\} [1-9]" "latency histogram for $p"
    done
    require '^autonomizer_core_primitive_duration_seconds_bucket\{.*le="\+Inf"\}' "cumulative +Inf bucket"
    for q in 0.5 0.95 0.99 0.999; do
        require "^autonomizer_core_primitive_latency_seconds\{primitive=\"predict\",quantile=\"$q\"\} [0-9]" "p$q latency quantile for predict"
    done
    require '^autonomizer_core_primitive_latency_seconds_count\{primitive="predict"\} [1-9]' "latency summary count"

    # auerr-classed error counters (the serve workload provokes one failure).
    require '^autonomizer_core_primitive_errors_total\{class="[a-z_]+",primitive="[a-z_]+"\} [1-9]' "classed error counter"

    # Training metrics.
    require '^autonomizer_nn_fit_epochs_total [1-9]' "fit epoch counter"
    require '^autonomizer_nn_fit_last_loss\{model=' "per-model fit loss gauge"
    require '^autonomizer_nn_optimizer_steps_total\{optimizer=' "optimizer step counter"
    require '^autonomizer_rl_train_steps_total' "rl train step counter"

    # Worker-pool gauges.
    require '^autonomizer_parallel_workers [0-9]' "parallel width gauge"
    require '^autonomizer_parallel_pool_size [0-9]' "pool size gauge"
    require '^autonomizer_parallel_tasks_queued [0-9]' "queued tasks gauge"
    require '^autonomizer_parallel_tasks_running [0-9]' "running tasks gauge"

    # Store and checkpoint activity.
    require '^autonomizer_db_store_bytes [0-9]' "db store footprint gauge"
    require '^autonomizer_db_appends_total [1-9]' "db append counter"
    require '^autonomizer_ckpt_checkpoints_total [1-9]' "checkpoint counter"
    require '^autonomizer_ckpt_restores_total [1-9]' "restore counter"
else
    # Serving-layer families (DESIGN.md §5d/§5h). The gate runs after
    # check_serve.sh has driven predict traffic through the demo model.
    require '^autonomizer_serve_batches_total [1-9]' "dispatched batch counter"
    require '^autonomizer_serve_batch_size_count [1-9]' "batch size histogram"
    for st in queue_wait batch_assemble engine_predict response_encode; do
        require "^autonomizer_serve_stage_duration_seconds_count\{stage=\"$st\"\} [1-9]" "stage histogram for $st"
    done
    for q in 0.5 0.99; do
        require "^autonomizer_serve_model_latency_seconds\{model=\"demo\",quantile=\"$q\"\} [0-9]" "p$q serving latency for demo"
    done
    require '^autonomizer_serve_model_version\{model="demo"\} [1-9]' "model version gauge"
    require '^autonomizer_serve_queue_depth\{model="demo"\} [0-9]' "queue depth gauge"

    # Drive one ground-truth observation so the drift surface is live,
    # then re-scrape.
    if ! curl -fsS -X POST -H 'Content-Type: application/json' \
        -d '{"model":"demo","predicted":[0.5,0.5],"observed":[0.5,0.5]}' \
        "$BASE/v1/observe" >/dev/null; then
        echo "FAIL: POST /v1/observe rejected a valid observation" >&2
        fail=1
    fi
    metrics=$(curl -fsS "$BASE/metrics")
    require '^autonomizer_drift_loss\{model="demo"\} [0-9]' "drift loss gauge"
    require '^autonomizer_drift_healthy\{model="demo"\} 1' "drift verdict gauge"
    require '^autonomizer_drift_observations_total\{model="demo"\} [1-9]' "drift observation counter"
fi

# The expvar mirror serves the same registry as JSON. (Buffer before
# grep: under pipefail, grep -q exiting early would fail curl with
# SIGPIPE.)
debugvars=$(curl -fsS "$BASE/debug/vars" || true)
if ! grep -q autonomizer_metrics <<<"$debugvars"; then
    echo "FAIL: /debug/vars missing the autonomizer_metrics key" >&2
    fail=1
fi

# Liveness/readiness split: plain /healthz is 200, deep adds checks and
# reports ready (the workload here is healthy, so both answer 200).
if ! curl -fsS "$BASE/healthz" | grep -q '"ok":true'; then
    echo "FAIL: /healthz liveness did not answer ok" >&2
    fail=1
fi
deep=$(curl -fsS "$BASE/healthz?deep=1" || true)
if ! grep -q '"ready":true' <<<"$deep"; then
    echo "FAIL: /healthz?deep=1 not ready on a healthy process: $deep" >&2
    fail=1
fi

# /statusz answers a JSON status document with the posture fields.
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
curl -fsS "$BASE/statusz" > "$workdir/statusz.json" || true
if ! python3 - "$MODE" "$workdir/statusz.json" <<'PYEOF'
import json, sys
mode, path = sys.argv[1], sys.argv[2]
with open(path) as f:
    doc = json.load(f)
if mode == "serve":
    assert doc["ready"] is True, "serve statusz not ready"
    assert doc["models"], "serve statusz lists no models"
    m = doc["models"][0]
    assert m["name"] == "demo" and m["version"] >= 1, m
    assert m["plan"], "no engine plan reported"
    assert m["queue_capacity"] >= 1, m
else:
    assert doc["uptime_seconds"] >= 0, doc
    assert "go_version" in doc and "metrics" in doc, doc
print("statusz ok")
PYEOF
then
    echo "FAIL: /statusz document invalid for mode $MODE" >&2
    cat "$workdir/statusz.json" >&2 || true
    fail=1
fi

# The whole exposition must be well-formed Prometheus text: HELP/TYPE
# at most once per family, every sample line matching the grammar
# (including escaped quotes and backslashes in label values).
printf '%s\n' "$metrics" > "$workdir/metrics.txt"
if ! python3 - "$workdir/metrics.txt" <<'PYEOF'
import re, sys
seen_help, seen_type = set(), set()
label = r'[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"'
sample = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*'
    r'(\{' + label + r'(,' + label + r')*\})?'
    r' (NaN|[+-]?Inf|[-+0-9.eE]+)$')
bad = 0
with open(sys.argv[1]) as f:
    for ln in f.read().splitlines():
        if not ln.strip():
            continue
        if ln.startswith("# HELP "):
            name = ln.split()[2]
            if name in seen_help:
                print(f"duplicate HELP for {name}", file=sys.stderr); bad = 1
            seen_help.add(name)
        elif ln.startswith("# TYPE "):
            name = ln.split()[2]
            if name in seen_type:
                print(f"duplicate TYPE for {name}", file=sys.stderr); bad = 1
            seen_type.add(name)
        elif ln.startswith("#"):
            pass
        elif not sample.match(ln):
            print(f"malformed sample line: {ln!r}", file=sys.stderr); bad = 1
sys.exit(bad)
PYEOF
then
    echo "FAIL: /metrics exposition is not well-formed Prometheus text" >&2
    fail=1
fi

if [ "$fail" -ne 0 ]; then
    echo "--- /metrics dump ---" >&2
    printf '%s\n' "$metrics" >&2
    exit 1
fi
echo "metrics gate ($MODE): all required families present on $BASE"
