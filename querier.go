package autonomizer

import (
	"context"
	"net/http"

	"github.com/autonomizer/autonomizer/internal/auerr"
	"github.com/autonomizer/autonomizer/internal/obs"
	"github.com/autonomizer/autonomizer/internal/serve"
)

// Querier is the query-side surface of an autonomized execution: the
// primitives a host calls on every iteration of its decision loop
// (au_extract → au_serialize → au_NN → au_write_back), in both their
// plain and context-aware forms. Three implementations ship with the
// framework, all reachable through Dial:
//
//   - *Runtime — the embedded engine; queries run in-process.
//   - *Client — the remote engine; Predict/NN/NNRL/Observe cross the
//     network to an auserve instance, whose micro-batcher coalesces
//     them with other clients' traffic, while the store-side
//     primitives stay local.
//   - the fleet-aware *Client Dial builds for "fleet:" targets — the
//     same remote engine with model names consistent-hashed across N
//     backends and dead backends rehashed away.
//
// Hosts written against Querier switch between them with one
// constructor (or one Dial target string) change, and all honor the
// same typed-error contract (errors.Is against ErrUnknownModel,
// ErrMissingInput, ErrOverloaded, ErrUnavailable, ErrCanceled, ...).
// Train-only operations (Config, Fit, Checkpoint, Restore, Save) are
// deliberately outside Querier: serving is TS-mode.
type Querier interface {
	// Extract appends feature values to the named database list
	// (au_extract).
	Extract(name string, vals ...float64)
	ExtractCtx(ctx context.Context, name string, vals ...float64) error

	// Serialize concatenates and consumes the named lists into one
	// model-input binding (au_serialize).
	Serialize(names ...string) string
	SerializeCtx(ctx context.Context, names ...string) (string, error)

	// NN runs the supervised au_NN: feed the extName binding to the
	// model, bind the output across wbNames.
	NN(mdName, extName string, wbNames ...string) error
	NNCtx(ctx context.Context, mdName, extName string, wbNames ...string) error

	// NNRL runs the RL au_NN: select an action for the extName state and
	// bind it to wbName.
	NNRL(mdName, extName string, reward float64, terminal bool, wbName string) error
	NNRLCtx(ctx context.Context, mdName, extName string, reward float64, terminal bool, wbName string) error

	// WriteBack copies a bound output into dst (au_write_back).
	WriteBack(name string, dst []float64) (int, error)
	WriteBackCtx(ctx context.Context, name string, dst []float64) (int, error)

	// WriteBackAction reads a bound discrete action (au_write_back for
	// RL outputs).
	WriteBackAction(name string) (int, error)
	WriteBackActionCtx(ctx context.Context, name string) (int, error)

	// Predict runs one raw forward pass, bypassing the database store.
	Predict(mdName string, in []float64) ([]float64, error)
	PredictCtx(ctx context.Context, mdName string, in []float64) ([]float64, error)

	// Observe reports the ground-truth outcome for an earlier
	// prediction of the named model: the pair's mean squared error
	// joins the model's rolling drift window (embedded: this runtime's
	// own monitor; remote: the serving backend's) and the updated
	// verdict comes back. The loop that lets a deployment notice a
	// model drifting away from reality, wherever the model runs.
	Observe(mdName string, predicted, observed []float64) (DriftStatus, error)
	ObserveCtx(ctx context.Context, mdName string, predicted, observed []float64) (DriftStatus, error)
}

// All engines satisfy Querier; a signature drift in any is a compile
// error here, not a runtime surprise.
var (
	_ Querier = (*Runtime)(nil)
	_ Querier = (*Client)(nil)
)

// Client is a remote Querier talking to an auserve model server (or,
// through a fleet Resolver, to a sharded fleet of them). See the serve
// package for the wire protocol and batching contract.
type Client = serve.Client

// ClientOption configures a remote Querier — the single option
// vocabulary shared by NewClient and Dial (embedded Dial targets
// ignore client options; they have no transport).
type ClientOption = serve.ClientOption

// RetryPolicy tunes WithRetry: jittered exponential backoff around
// transient serving failures. The zero value of each field selects
// the documented default (4 attempts, 10ms base, 1s cap, no budget).
type RetryPolicy = serve.RetryPolicy

// DriftStatus is one model's current drift verdict, returned by
// Observe/ObserveCtx on every implementation of Querier.
type DriftStatus = obs.DriftStatus

// DriftConfig tunes a drift monitor (window, threshold, sample floor);
// see WithDriftConfig for embedded runtimes and serve.Config for
// servers.
type DriftConfig = obs.DriftConfig

// WithHTTPClient substitutes the client's HTTP transport.
func WithHTTPClient(hc *http.Client) ClientOption { return serve.WithHTTPClient(hc) }

// WithJSONPredict disables the binary Predict fast path in favor of
// JSON bodies.
func WithJSONPredict() ClientOption { return serve.WithJSONPredict() }

// WithRetry makes a remote Querier retry transient failures — shed
// requests (ErrOverloaded) and dead or missing backends
// (ErrUnavailable) — with jittered exponential backoff under p. With
// a fleet target every retry re-resolves the model's owner, so a
// request caught by a backend death lands on the rehashed owner:
//
//	q, _ := autonomizer.Dial("fleet:http://a:8080,http://b:8080",
//		autonomizer.WithRetry(autonomizer.RetryPolicy{}))
func WithRetry(p RetryPolicy) ClientOption { return serve.WithRetry(p) }

// NewClient returns a Client for the auserve instance at baseURL:
//
//	q := autonomizer.NewClient("http://127.0.0.1:8080")
//	q.Extract("PX", px)
//	key, _ := q.SerializeCtx(ctx, "PX")
//	if err := q.NNCtx(ctx, "Mario", key, "output"); err != nil { ... }
//
// It remains a thin wrapper over Dial's single-URL case; prefer Dial
// in new code so the target stays one configuration string.
func NewClient(baseURL string, opts ...ClientOption) *Client {
	return serve.NewClient(baseURL, opts...)
}

// ErrOverloaded marks a query shed by a saturated server: the serving
// queue was full and the request was rejected immediately (HTTP 429 on
// the wire) rather than queued unboundedly. Retry with backoff.
var ErrOverloaded = auerr.ErrOverloaded

// ErrUnavailable marks a query that could not reach a live backend —
// the fleet had no healthy owner for the model, or the backend died
// mid-request (HTTP 503 on the wire). Transient: the supervisor is
// restarting the backend and the router is rehashing; retry with
// backoff (see WithRetry).
var ErrUnavailable = auerr.ErrUnavailable
