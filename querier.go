package autonomizer

import (
	"context"
	"net/http"

	"github.com/autonomizer/autonomizer/internal/auerr"
	"github.com/autonomizer/autonomizer/internal/serve"
)

// Querier is the query-side surface of an autonomized execution: the
// primitives a host calls on every iteration of its decision loop
// (au_extract → au_serialize → au_NN → au_write_back), in both their
// plain and context-aware forms. Two implementations ship with the
// framework:
//
//   - *Runtime — the embedded engine; queries run in-process.
//   - *Client — the remote engine; Predict/NN/NNRL cross the network to
//     an auserve instance, whose micro-batcher coalesces them with
//     other clients' traffic, while the store-side primitives stay
//     local.
//
// Hosts written against Querier switch between the two with one
// constructor change, and both honor the same typed-error contract
// (errors.Is against ErrUnknownModel, ErrMissingInput, ErrOverloaded,
// ErrCanceled, ...). Train-only operations (Config, Fit, Checkpoint,
// Restore, Save) are deliberately outside Querier: serving is TS-mode.
type Querier interface {
	// Extract appends feature values to the named database list
	// (au_extract).
	Extract(name string, vals ...float64)
	ExtractCtx(ctx context.Context, name string, vals ...float64) error

	// Serialize concatenates and consumes the named lists into one
	// model-input binding (au_serialize).
	Serialize(names ...string) string
	SerializeCtx(ctx context.Context, names ...string) (string, error)

	// NN runs the supervised au_NN: feed the extName binding to the
	// model, bind the output across wbNames.
	NN(mdName, extName string, wbNames ...string) error
	NNCtx(ctx context.Context, mdName, extName string, wbNames ...string) error

	// NNRL runs the RL au_NN: select an action for the extName state and
	// bind it to wbName.
	NNRL(mdName, extName string, reward float64, terminal bool, wbName string) error
	NNRLCtx(ctx context.Context, mdName, extName string, reward float64, terminal bool, wbName string) error

	// WriteBack copies a bound output into dst (au_write_back).
	WriteBack(name string, dst []float64) (int, error)
	WriteBackCtx(ctx context.Context, name string, dst []float64) (int, error)

	// WriteBackAction reads a bound discrete action (au_write_back for
	// RL outputs).
	WriteBackAction(name string) (int, error)
	WriteBackActionCtx(ctx context.Context, name string) (int, error)

	// Predict runs one raw forward pass, bypassing the database store.
	Predict(mdName string, in []float64) ([]float64, error)
	PredictCtx(ctx context.Context, mdName string, in []float64) ([]float64, error)
}

// Both engines satisfy Querier; a signature drift in either is a
// compile error here, not a runtime surprise.
var (
	_ Querier = (*Runtime)(nil)
	_ Querier = (*Client)(nil)
)

// Client is a remote Querier talking to an auserve model server. See
// the serve package for the wire protocol and batching contract.
type Client = serve.Client

// ClientOption configures NewClient.
type ClientOption = serve.ClientOption

// WithHTTPClient substitutes the client's HTTP transport.
func WithHTTPClient(hc *http.Client) ClientOption { return serve.WithHTTPClient(hc) }

// WithJSONPredict disables the binary Predict fast path in favor of
// JSON bodies.
func WithJSONPredict() ClientOption { return serve.WithJSONPredict() }

// NewClient returns a Client for the auserve instance at baseURL:
//
//	q := autonomizer.NewClient("http://127.0.0.1:8080")
//	q.Extract("PX", px)
//	key, _ := q.SerializeCtx(ctx, "PX")
//	if err := q.NNCtx(ctx, "Mario", key, "output"); err != nil { ... }
func NewClient(baseURL string, opts ...ClientOption) *Client {
	return serve.NewClient(baseURL, opts...)
}

// ErrOverloaded marks a query shed by a saturated server: the serving
// queue was full and the request was rejected immediately (HTTP 429 on
// the wire) rather than queued unboundedly. Retry with backoff.
var ErrOverloaded = auerr.ErrOverloaded
